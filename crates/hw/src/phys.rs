//! Simulated physical memory.
//!
//! Models a machine with a DRAM tier at low physical addresses and a
//! (much larger) persistent NVM tier above it, as the paper's target
//! platforms are provisioned. Backing bytes are stored sparsely so a
//! multi-terabyte physical address space can be simulated on a laptop:
//! a frame consumes host memory only once it is written.
//!
//! Persistence semantics: on a simulated power failure
//! ([`PhysicalMemory::crash`]), DRAM contents are lost; NVM contents
//! survive. This is the substrate for the paper's §"Persistence
//! management" experiments.

use crate::addr::{FrameNo, PhysAddr, PAGE_SIZE};
use crate::fasthash::FastMap;

/// Frames per sparse chunk (must be a power of two). One chunk groups
/// 64 frames (256 KiB of simulated memory) behind a single map entry,
/// so a streaming workload pays one hash per 64 frames instead of one
/// per frame.
const CHUNK_FRAMES: u64 = 64;
const CHUNK_SHIFT: u32 = CHUNK_FRAMES.trailing_zeros();

/// Reference page of zeros for the sparse zero-write fast path.
static ZERO_PAGE: [u8; PAGE_SIZE as usize] = [0u8; PAGE_SIZE as usize];

/// Word entries a frame can hold before its backing is promoted to a
/// fully materialized page.
const WORDS_MAX: usize = 4;

/// Backing for one simulated frame. Streaming store workloads write a
/// word or two per page; materializing a 4 KiB host page (one
/// allocation plus one host page fault per simulated frame) for each
/// of those would make the *host* cost of a fused N-page store run
/// linear in N with a large constant, so sparse word writes are kept
/// inline until a frame accumulates enough bytes to deserve a page.
#[derive(Debug)]
enum FrameBacking {
    /// Up to [`WORDS_MAX`] non-overlapping 8-byte writes into an
    /// otherwise-zero frame; `(byte_offset, value)` pairs, first
    /// `len` entries valid.
    Words(u8, [(u16, u64); WORDS_MAX]),
    /// Fully materialized page bytes.
    Full(Box<[u8]>),
}

impl FrameBacking {
    /// Materialized page bytes equivalent to this backing.
    fn to_page(&self) -> Box<[u8]> {
        let mut bytes = vec![0u8; PAGE_SIZE as usize].into_boxed_slice();
        match self {
            FrameBacking::Words(n, words) => {
                for &(eo, v) in &words[..*n as usize] {
                    bytes[eo as usize..eo as usize + 8].copy_from_slice(&v.to_le_bytes());
                }
            }
            FrameBacking::Full(b) => bytes.copy_from_slice(b),
        }
        bytes
    }

    /// Copy `[off, off+out.len())` of the frame into `out`.
    fn read_into(&self, off: usize, out: &mut [u8]) {
        match self {
            FrameBacking::Words(n, words) => {
                out.fill(0);
                for &(eo, v) in &words[..*n as usize] {
                    let eo = eo as usize;
                    let s = eo.max(off);
                    let e = (eo + 8).min(off + out.len());
                    if s < e {
                        out[s - off..e - off]
                            .copy_from_slice(&v.to_le_bytes()[s - eo..e - eo]);
                    }
                }
            }
            FrameBacking::Full(bytes) => out.copy_from_slice(&bytes[off..off + out.len()]),
        }
    }
}

/// One group of up to [`CHUNK_FRAMES`] backed frames.
#[derive(Debug)]
struct Chunk {
    /// Backing for frame `chunk_base + i`; `None` reads as zero.
    frames: Box<[Option<FrameBacking>]>,
    /// Number of `Some` entries (chunk is dropped at zero).
    backed: u32,
}

impl Chunk {
    fn new() -> Chunk {
        Chunk {
            frames: (0..CHUNK_FRAMES).map(|_| None).collect(),
            backed: 0,
        }
    }
}

/// Apply one in-frame aligned word write to a slot, preferring a word
/// entry over materializing the page. Returns `true` iff the slot went
/// from unbacked to backed.
fn write_word_slot(slot: &mut Option<FrameBacking>, off: u16, v: u64) -> bool {
    match slot {
        None => {
            // Zeros into an unbacked frame are already there.
            if v == 0 {
                return false;
            }
            let mut words = [(0u16, 0u64); WORDS_MAX];
            words[0] = (off, v);
            *slot = Some(FrameBacking::Words(1, words));
            true
        }
        Some(FrameBacking::Full(bytes)) => {
            bytes[off as usize..off as usize + 8].copy_from_slice(&v.to_le_bytes());
            false
        }
        Some(FrameBacking::Words(n, words)) => {
            for e in words[..*n as usize].iter_mut() {
                if e.0 == off {
                    e.1 = v;
                    return false;
                }
            }
            let overlap = words[..*n as usize]
                .iter()
                .any(|e| (i32::from(e.0) - i32::from(off)).abs() < 8);
            if !overlap {
                if v == 0 {
                    // Zeros into untouched bytes of the frame.
                    return false;
                }
                if (*n as usize) < WORDS_MAX {
                    words[*n as usize] = (off, v);
                    *n += 1;
                    return false;
                }
            }
            // Overlapping or overflowing: materialize and write through.
            let mut bytes = slot.as_ref().expect("checked Some").to_page();
            bytes[off as usize..off as usize + 8].copy_from_slice(&v.to_le_bytes());
            *slot = Some(FrameBacking::Full(bytes));
            false
        }
    }
}

/// A frame's backing moved out of physical memory — the page image a
/// swap device stores. Moving the backing (instead of copying 4 KiB
/// through an intermediate buffer) keeps the host cost of swapping a
/// frame proportional to what was actually written into it.
#[derive(Debug, Default)]
pub struct FrameImage(Option<FrameBacking>);

impl FrameImage {
    /// Image holding a fully materialized page.
    ///
    /// # Panics
    /// Panics unless `bytes` is exactly one page.
    pub fn from_page(bytes: Box<[u8]>) -> FrameImage {
        assert_eq!(bytes.len() as u64, PAGE_SIZE, "frame images are whole pages");
        FrameImage(Some(FrameBacking::Full(bytes)))
    }

    /// Materialized page bytes equivalent to this image.
    pub fn to_page(&self) -> Box<[u8]> {
        match &self.0 {
            Some(b) => b.to_page(),
            None => vec![0u8; PAGE_SIZE as usize].into_boxed_slice(),
        }
    }
}

/// Memory technology backing a physical frame.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum MemTier {
    /// Volatile DRAM.
    Dram,
    /// Persistent byte-addressable memory (3D XPoint class).
    Nvm,
}

/// The machine's physical memory: a flat frame array split into a DRAM
/// tier and an NVM tier, with sparse copy-on-write-style backing.
#[derive(Debug)]
pub struct PhysicalMemory {
    dram_frames: u64,
    total_frames: u64,
    /// Chunked sparse backing store keyed by `frame >> CHUNK_SHIFT`;
    /// frames without backing read as zero. Keys are trusted
    /// fixed-width chunk numbers, so the fast hasher is safe — and
    /// backing-store layout can never leak into a simulated number.
    chunks: FastMap<u64, Chunk>,
    /// Total backed frames across all chunks.
    backed: usize,
}

impl PhysicalMemory {
    /// Create a physical memory with `dram_bytes` of DRAM followed by
    /// `nvm_bytes` of NVM. Sizes are rounded up to whole frames.
    ///
    /// # Panics
    /// Panics if the total size is zero.
    pub fn new(dram_bytes: u64, nvm_bytes: u64) -> Self {
        let dram_frames = dram_bytes.div_ceil(PAGE_SIZE);
        let nvm_frames = nvm_bytes.div_ceil(PAGE_SIZE);
        let total_frames = dram_frames + nvm_frames;
        assert!(total_frames > 0, "physical memory must be non-empty");
        PhysicalMemory {
            dram_frames,
            total_frames,
            chunks: FastMap::default(),
            backed: 0,
        }
    }

    /// Borrow the backing of `frame`, if any.
    #[inline]
    fn frame_backing(&self, frame: u64) -> Option<&FrameBacking> {
        self.chunks
            .get(&(frame >> CHUNK_SHIFT))?
            .frames[(frame & (CHUNK_FRAMES - 1)) as usize]
            .as_ref()
    }

    /// Fully materialized backing bytes of `frame`, allocated (zeroed)
    /// on first touch; word-entry backing is promoted to a page.
    fn frame_bytes_mut(&mut self, frame: u64) -> &mut Box<[u8]> {
        let chunk = self.chunks.entry(frame >> CHUNK_SHIFT).or_insert_with(Chunk::new);
        let slot = &mut chunk.frames[(frame & (CHUNK_FRAMES - 1)) as usize];
        match slot {
            None => {
                *slot = Some(FrameBacking::Full(
                    vec![0u8; PAGE_SIZE as usize].into_boxed_slice(),
                ));
                chunk.backed += 1;
                self.backed += 1;
            }
            Some(FrameBacking::Words(..)) => {
                let page = slot.as_ref().expect("checked Some").to_page();
                *slot = Some(FrameBacking::Full(page));
            }
            Some(FrameBacking::Full(_)) => {}
        }
        match slot {
            Some(FrameBacking::Full(bytes)) => bytes,
            _ => unreachable!("just materialized"),
        }
    }

    /// Drop the backing of `frame`, releasing its chunk when empty.
    fn drop_frame(&mut self, frame: u64) {
        if let Some(chunk) = self.chunks.get_mut(&(frame >> CHUNK_SHIFT)) {
            if chunk.frames[(frame & (CHUNK_FRAMES - 1)) as usize].take().is_some() {
                chunk.backed -= 1;
                self.backed -= 1;
                if chunk.backed == 0 {
                    self.chunks.remove(&(frame >> CHUNK_SHIFT));
                }
            }
        }
    }

    /// Total number of physical frames.
    #[inline]
    pub fn total_frames(&self) -> u64 {
        self.total_frames
    }

    /// Number of DRAM frames (frame numbers `0..dram_frames`).
    #[inline]
    pub fn dram_frames(&self) -> u64 {
        self.dram_frames
    }

    /// Number of NVM frames (frame numbers `dram_frames..total`).
    #[inline]
    pub fn nvm_frames(&self) -> u64 {
        self.total_frames - self.dram_frames
    }

    /// First NVM frame number.
    #[inline]
    pub fn nvm_base(&self) -> FrameNo {
        FrameNo(self.dram_frames)
    }

    /// Tier of the given frame.
    ///
    /// # Panics
    /// Panics if the frame is out of range.
    #[inline]
    pub fn tier(&self, frame: FrameNo) -> MemTier {
        assert!(frame.0 < self.total_frames, "frame {frame:?} out of range");
        if frame.0 < self.dram_frames {
            MemTier::Dram
        } else {
            MemTier::Nvm
        }
    }

    /// Tier of a whole frame span, or `None` when the span straddles
    /// the DRAM/NVM boundary. This is the O(1) tier-uniformity probe
    /// the bulk-fault prover runs before charging N accesses at one
    /// tier's latency.
    ///
    /// # Panics
    /// Panics if the span is empty or out of range.
    #[inline]
    pub fn span_tier(&self, start: FrameNo, frames: u64) -> Option<MemTier> {
        assert!(frames > 0, "empty span");
        let end = start.0.checked_add(frames).expect("frame range overflow");
        assert!(end <= self.total_frames, "span out of range");
        if end <= self.dram_frames {
            Some(MemTier::Dram)
        } else if start.0 >= self.dram_frames {
            Some(MemTier::Nvm)
        } else {
            None
        }
    }

    /// True if `frame` is a valid frame number.
    #[inline]
    pub fn contains(&self, frame: FrameNo) -> bool {
        frame.0 < self.total_frames
    }

    /// Number of frames with host backing allocated (diagnostics).
    pub fn backed_frames(&self) -> usize {
        self.backed
    }

    /// Move the backing of `frame` out as a [`FrameImage`], leaving the
    /// frame reading as zero. Swap devices store the image directly, so
    /// evicting a sparse frame never materializes a host page.
    ///
    /// # Panics
    /// Panics if the frame is out of range.
    pub fn take_frame_image(&mut self, frame: FrameNo) -> FrameImage {
        assert!(frame.0 < self.total_frames, "frame {frame:?} out of range");
        let Some(chunk) = self.chunks.get_mut(&(frame.0 >> CHUNK_SHIFT)) else {
            return FrameImage(None);
        };
        let img = chunk.frames[(frame.0 & (CHUNK_FRAMES - 1)) as usize].take();
        if img.is_some() {
            chunk.backed -= 1;
            self.backed -= 1;
            if chunk.backed == 0 {
                self.chunks.remove(&(frame.0 >> CHUNK_SHIFT));
            }
        }
        FrameImage(img)
    }

    /// Install `img` as the backing of `frame`, replacing whatever was
    /// there — the moved-image equivalent of writing a full page.
    ///
    /// # Panics
    /// Panics if the frame is out of range.
    pub fn put_frame_image(&mut self, frame: FrameNo, img: FrameImage) {
        assert!(frame.0 < self.total_frames, "frame {frame:?} out of range");
        let Some(backing) = img.0 else {
            self.drop_frame(frame.0);
            return;
        };
        let chunk = self
            .chunks
            .entry(frame.0 >> CHUNK_SHIFT)
            .or_insert_with(Chunk::new);
        let slot = &mut chunk.frames[(frame.0 & (CHUNK_FRAMES - 1)) as usize];
        if slot.replace(backing).is_none() {
            chunk.backed += 1;
            self.backed += 1;
        }
    }

    /// Read `buf.len()` bytes starting at `pa`. Unwritten memory reads
    /// as zero. The read may cross frame boundaries.
    ///
    /// # Panics
    /// Panics if the range extends past the end of physical memory.
    pub fn read(&self, pa: PhysAddr, buf: &mut [u8]) {
        self.check_range(pa, buf.len() as u64);
        let mut addr = pa.0;
        let mut done = 0usize;
        while done < buf.len() {
            let frame = addr >> crate::addr::PAGE_SHIFT;
            let off = (addr & (PAGE_SIZE - 1)) as usize;
            let take = usize::min(buf.len() - done, (PAGE_SIZE as usize) - off);
            match self.frame_backing(frame) {
                Some(backing) => backing.read_into(off, &mut buf[done..done + take]),
                None => buf[done..done + take].fill(0),
            }
            done += take;
            addr += take as u64;
        }
    }

    /// Write `buf` starting at `pa`, allocating host backing as needed.
    ///
    /// # Panics
    /// Panics if the range extends past the end of physical memory.
    pub fn write(&mut self, pa: PhysAddr, buf: &[u8]) {
        self.check_range(pa, buf.len() as u64);
        let mut addr = pa.0;
        let mut done = 0usize;
        while done < buf.len() {
            let frame = addr >> crate::addr::PAGE_SHIFT;
            let off = (addr & (PAGE_SIZE - 1)) as usize;
            let take = usize::min(buf.len() - done, (PAGE_SIZE as usize) - off);
            let src = &buf[done..done + take];
            // Writing zeros to an unbacked frame is a no-op: unbacked
            // memory already reads as zero, so skipping the backing
            // allocation leaves every future read identical while a
            // zero-fill streaming write stays sparse on the host.
            if src == &ZERO_PAGE[..take] && self.frame_backing(frame).is_none() {
                done += take;
                addr += take as u64;
                continue;
            }
            let bytes = self.frame_bytes_mut(frame);
            bytes[off..off + take].copy_from_slice(src);
            done += take;
            addr += take as u64;
        }
    }

    /// Read a single `u64` at `pa` (little-endian), a convenience for
    /// word-granularity workloads.
    pub fn read_u64(&self, pa: PhysAddr) -> u64 {
        let mut b = [0u8; 8];
        self.read(pa, &mut b);
        u64::from_le_bytes(b)
    }

    /// Write a single `u64` at `pa` (little-endian). A word into an
    /// otherwise-untouched frame is stored as a sparse word entry, not
    /// a materialized page.
    pub fn write_u64(&mut self, pa: PhysAddr, v: u64) {
        let off = (pa.0 & (PAGE_SIZE - 1)) as usize;
        if off > (PAGE_SIZE - 8) as usize {
            // Frame-crossing word: the general path handles it.
            self.write(pa, &v.to_le_bytes());
            return;
        }
        self.check_range(pa, 8);
        let frame = pa.0 >> crate::addr::PAGE_SHIFT;
        if v == 0 && self.frame_backing(frame).is_none() {
            return;
        }
        let chunk = self.chunks.entry(frame >> CHUNK_SHIFT).or_insert_with(Chunk::new);
        let slot = &mut chunk.frames[(frame & (CHUNK_FRAMES - 1)) as usize];
        if write_word_slot(slot, off as u16, v) {
            chunk.backed += 1;
            self.backed += 1;
        }
    }

    /// Bulk word writes for the fast-forward engines: performs each
    /// `(pa, value)` write exactly as [`write_u64`](Self::write_u64)
    /// would, but reserves backing with one sparse-chunk probe per run
    /// of same-chunk writes instead of one hash per word. Frames
    /// handed out by a bulk allocation are mostly chunk-contiguous, so
    /// a fused N-page run pays O(N / 64) probes.
    pub fn write_u64_run(&mut self, writes: &[(PhysAddr, u64)]) {
        let total_bytes = self.total_frames * PAGE_SIZE;
        let mut idx = 0usize;
        while idx < writes.len() {
            let pa = writes[idx].0;
            if pa.0 & (PAGE_SIZE - 1) > PAGE_SIZE - 8 {
                // Frame-crossing word: the general path handles it.
                let v = writes[idx].1;
                self.write(pa, &v.to_le_bytes());
                idx += 1;
                continue;
            }
            let chunk_no = pa.0 >> crate::addr::PAGE_SHIFT >> CHUNK_SHIFT;
            let mut newly_backed = 0usize;
            let chunk = self.chunks.entry(chunk_no).or_insert_with(Chunk::new);
            while idx < writes.len() {
                let (pa, v) = writes[idx];
                let off = (pa.0 & (PAGE_SIZE - 1)) as usize;
                let frame = pa.0 >> crate::addr::PAGE_SHIFT;
                if frame >> CHUNK_SHIFT != chunk_no || off > (PAGE_SIZE - 8) as usize {
                    break;
                }
                assert!(
                    pa.0 + 8 <= total_bytes,
                    "physical access {pa:?}+8 beyond end of memory"
                );
                let slot = &mut chunk.frames[(frame & (CHUNK_FRAMES - 1)) as usize];
                if write_word_slot(slot, off as u16, v) {
                    newly_backed += 1;
                }
                idx += 1;
            }
            chunk.backed += newly_backed as u32;
            self.backed += newly_backed;
        }
    }

    /// Zero `frames` whole frames starting at `start`. Implemented by
    /// dropping backing (sparse zero), so it is cheap on the host; the
    /// *simulated* cost is charged by the caller's zeroing policy.
    ///
    /// # Panics
    /// Panics if the range is out of bounds.
    pub fn zero_frames(&mut self, start: FrameNo, frames: u64) {
        let end = start.0.checked_add(frames).expect("frame range overflow");
        assert!(end <= self.total_frames, "zero_frames out of range");
        for f in start.0..end {
            self.drop_frame(f);
        }
    }

    /// True if every byte of the frame is zero (diagnostic for erase
    /// policies and persistence tests).
    pub fn frame_is_zero(&self, frame: FrameNo) -> bool {
        assert!(self.contains(frame), "frame out of range");
        match self.frame_backing(frame.0) {
            None => true,
            Some(FrameBacking::Words(n, words)) => {
                words[..*n as usize].iter().all(|&(_, v)| v == 0)
            }
            Some(FrameBacking::Full(bytes)) => bytes.iter().all(|&b| b == 0),
        }
    }

    /// Simulate a power failure: DRAM contents are lost, NVM survives.
    pub fn crash(&mut self) {
        let dram = self.dram_frames;
        let mut dropped = 0usize;
        self.chunks.retain(|&chunk_no, chunk| {
            let base = chunk_no << CHUNK_SHIFT;
            if base + CHUNK_FRAMES <= dram {
                // Entirely volatile: the whole chunk is lost.
                dropped += chunk.backed as usize;
                return false;
            }
            if base < dram {
                // Straddles the tier boundary: lose the DRAM part.
                for slot in &mut chunk.frames[..(dram - base) as usize] {
                    if slot.take().is_some() {
                        chunk.backed -= 1;
                        dropped += 1;
                    }
                }
            }
            chunk.backed > 0
        });
        self.backed -= dropped;
    }

    fn check_range(&self, pa: PhysAddr, len: u64) {
        let end = pa.0.checked_add(len).expect("physical range overflow");
        assert!(
            end <= self.total_frames * PAGE_SIZE,
            "physical access {pa:?}+{len} beyond end of memory"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem() -> PhysicalMemory {
        // 1 MiB DRAM + 4 MiB NVM.
        PhysicalMemory::new(1 << 20, 4 << 20)
    }

    #[test]
    fn geometry() {
        let m = mem();
        assert_eq!(m.dram_frames(), 256);
        assert_eq!(m.nvm_frames(), 1024);
        assert_eq!(m.total_frames(), 1280);
        assert_eq!(m.nvm_base(), FrameNo(256));
        assert_eq!(m.tier(FrameNo(0)), MemTier::Dram);
        assert_eq!(m.tier(FrameNo(255)), MemTier::Dram);
        assert_eq!(m.tier(FrameNo(256)), MemTier::Nvm);
        assert!(m.contains(FrameNo(1279)));
        assert!(!m.contains(FrameNo(1280)));
    }

    #[test]
    fn unwritten_reads_zero() {
        let m = mem();
        let mut buf = [0xffu8; 32];
        m.read(PhysAddr(12345), &mut buf);
        assert_eq!(buf, [0u8; 32]);
        assert_eq!(m.backed_frames(), 0);
    }

    #[test]
    fn write_read_roundtrip_cross_frame() {
        let mut m = mem();
        // Write spanning a frame boundary.
        let pa = PhysAddr(PAGE_SIZE - 5);
        let data: Vec<u8> = (0..13u8).collect();
        m.write(pa, &data);
        let mut out = vec![0u8; 13];
        m.read(pa, &mut out);
        assert_eq!(out, data);
        assert_eq!(m.backed_frames(), 2);
    }

    #[test]
    fn u64_roundtrip() {
        let mut m = mem();
        m.write_u64(PhysAddr(64), 0xdead_beef_cafe_f00d);
        assert_eq!(m.read_u64(PhysAddr(64)), 0xdead_beef_cafe_f00d);
        assert_eq!(m.read_u64(PhysAddr(128)), 0);
    }

    #[test]
    fn zeroing_clears_and_releases() {
        let mut m = mem();
        m.write(PhysAddr(0), &[1, 2, 3]);
        assert!(!m.frame_is_zero(FrameNo(0)));
        m.zero_frames(FrameNo(0), 1);
        assert!(m.frame_is_zero(FrameNo(0)));
        assert_eq!(m.backed_frames(), 0);
    }

    #[test]
    fn crash_loses_dram_keeps_nvm() {
        let mut m = mem();
        m.write(PhysAddr(0), b"volatile");
        let nvm_pa = m.nvm_base().base();
        m.write(nvm_pa, b"persistent");
        m.crash();
        let mut buf = [0u8; 10];
        m.read(PhysAddr(0), &mut buf[..8]);
        assert_eq!(&buf[..8], &[0u8; 8], "DRAM must be lost");
        m.read(nvm_pa, &mut buf);
        assert_eq!(&buf, b"persistent");
    }

    #[test]
    fn terabyte_scale_is_sparse() {
        // 16 GiB DRAM + 2 TiB NVM must not allocate host memory.
        let mut m = PhysicalMemory::new(16 << 30, 2 << 40);
        assert_eq!(m.total_frames(), (16u64 << 30) / 4096 + (2u64 << 40) / 4096);
        let last = PhysAddr((m.total_frames() - 1) * PAGE_SIZE);
        m.write_u64(last, 7);
        assert_eq!(m.read_u64(last), 7);
        assert_eq!(m.backed_frames(), 1);
    }

    #[test]
    #[should_panic(expected = "beyond end of memory")]
    fn oob_read_panics() {
        let m = mem();
        let mut b = [0u8; 1];
        m.read(PhysAddr(m.total_frames() * PAGE_SIZE), &mut b);
    }
}
