//! Set-associative translation lookaside buffer.
//!
//! Models a unified, ASID-tagged TLB. Capacity pressure is what makes
//! the paper's in-text observation reproducible: *"it was faster to
//! make a `read()` system call to read 16KB than to access data already
//! mapped into a process if it would cause TLB misses"* (§3.2/§4.3).

use crate::addr::{FrameNo, PageNo, PageSize, VirtAddr};
use crate::pagetable::PteFlags;

/// Address-space identifier tagging TLB entries.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct Asid(pub u16);

#[derive(Clone, Copy, Debug)]
struct TlbEntry {
    asid: Asid,
    /// Virtual page of the mapping base (for huge pages, the first
    /// base page of the huge region).
    vpn: PageNo,
    frame: FrameNo,
    size: PageSize,
    flags: PteFlags,
    /// LRU timestamp.
    stamp: u64,
}

/// A set-associative TLB.
#[derive(Debug)]
pub struct Tlb {
    sets: Vec<Vec<TlbEntry>>,
    assoc: usize,
    tick: u64,
}

/// Default number of TLB entries (64 sets × 8 ways = 512, in the range
/// of a Skylake-class second-level TLB combined with the first level).
pub const DEFAULT_SETS: usize = 64;
/// Default associativity.
pub const DEFAULT_ASSOC: usize = 8;

impl Default for Tlb {
    fn default() -> Self {
        Tlb::new(DEFAULT_SETS, DEFAULT_ASSOC)
    }
}

impl Tlb {
    /// Create a TLB with `sets` sets of `assoc` ways.
    ///
    /// # Panics
    /// Panics unless `sets` is a nonzero power of two and `assoc > 0`.
    pub fn new(sets: usize, assoc: usize) -> Tlb {
        assert!(
            sets.is_power_of_two() && sets > 0,
            "sets must be a power of two"
        );
        assert!(assoc > 0, "associativity must be nonzero");
        Tlb {
            sets: vec![Vec::with_capacity(assoc); sets],
            assoc,
            tick: 0,
        }
    }

    /// Total capacity in entries.
    pub fn capacity(&self) -> usize {
        self.sets.len() * self.assoc
    }

    /// Number of currently valid entries.
    pub fn occupancy(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }

    #[inline]
    fn set_index(&self, vpn: PageNo) -> usize {
        (vpn.0 as usize) & (self.sets.len() - 1)
    }

    /// Base virtual page of the mapping region containing `va` for a
    /// given page size.
    #[inline]
    fn region_vpn(va: VirtAddr, size: PageSize) -> PageNo {
        va.align_down(size.bytes()).page()
    }

    /// Look up `va` for `asid`. On a hit, returns the mapping and
    /// refreshes its LRU stamp. The *caller* (the MMU) charges costs
    /// and counts hits/misses.
    pub fn lookup(&mut self, asid: Asid, va: VirtAddr) -> Option<(FrameNo, PageSize, PteFlags)> {
        self.tick += 1;
        // A unified TLB probes with each supported page size (real
        // hardware splits structures; the effect is the same).
        for size in [PageSize::Base, PageSize::Huge2M, PageSize::Huge1G] {
            let vpn = Self::region_vpn(va, size);
            let set = self.set_index(vpn);
            let tick = self.tick;
            if let Some(e) = self.sets[set]
                .iter_mut()
                .find(|e| e.asid == asid && e.vpn == vpn && e.size == size)
            {
                e.stamp = tick;
                return Some((e.frame, e.size, e.flags));
            }
        }
        None
    }

    /// Insert a translation, evicting the LRU way of the set if full.
    pub fn insert(
        &mut self,
        asid: Asid,
        va: VirtAddr,
        frame: FrameNo,
        size: PageSize,
        flags: PteFlags,
    ) {
        self.tick += 1;
        let vpn = Self::region_vpn(va, size);
        let set = self.set_index(vpn);
        let entry = TlbEntry {
            asid,
            vpn,
            frame,
            size,
            flags,
            stamp: self.tick,
        };
        let ways = &mut self.sets[set];
        if let Some(e) = ways
            .iter_mut()
            .find(|e| e.asid == asid && e.vpn == vpn && e.size == size)
        {
            *e = entry;
            return;
        }
        if ways.len() < self.assoc {
            ways.push(entry);
            return;
        }
        let lru = ways
            .iter()
            .enumerate()
            .min_by_key(|(_, e)| e.stamp)
            .map(|(i, _)| i)
            .expect("nonempty set");
        ways[lru] = entry;
    }

    /// Invalidate the entry covering `va` in `asid` (INVLPG).
    pub fn invalidate_page(&mut self, asid: Asid, va: VirtAddr) {
        for size in [PageSize::Base, PageSize::Huge2M, PageSize::Huge1G] {
            let vpn = Self::region_vpn(va, size);
            let set = self.set_index(vpn);
            self.sets[set].retain(|e| !(e.asid == asid && e.vpn == vpn && e.size == size));
        }
    }

    /// Invalidate every entry belonging to `asid`.
    pub fn flush_asid(&mut self, asid: Asid) {
        for set in &mut self.sets {
            set.retain(|e| e.asid != asid);
        }
    }

    /// Invalidate everything.
    pub fn flush_all(&mut self) {
        for set in &mut self.sets {
            set.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::{HUGE_2M, PAGE_SIZE};

    const A: Asid = Asid(1);
    const B: Asid = Asid(2);

    #[test]
    fn miss_then_hit() {
        let mut tlb = Tlb::default();
        let va = VirtAddr(0x1000);
        assert!(tlb.lookup(A, va).is_none());
        tlb.insert(A, va, FrameNo(9), PageSize::Base, PteFlags::user_rw());
        let (f, s, _) = tlb.lookup(A, va).unwrap();
        assert_eq!(f, FrameNo(9));
        assert_eq!(s, PageSize::Base);
        // Different offset in the same page still hits.
        assert!(tlb.lookup(A, va + 123).is_some());
        // Different page misses.
        assert!(tlb.lookup(A, va + PAGE_SIZE).is_none());
    }

    #[test]
    fn asids_are_isolated() {
        let mut tlb = Tlb::default();
        let va = VirtAddr(0x1000);
        tlb.insert(A, va, FrameNo(9), PageSize::Base, PteFlags::user_rw());
        assert!(tlb.lookup(B, va).is_none());
        tlb.flush_asid(A);
        assert!(tlb.lookup(A, va).is_none());
    }

    #[test]
    fn huge_entry_covers_whole_region() {
        let mut tlb = Tlb::default();
        let base = VirtAddr(HUGE_2M);
        tlb.insert(
            A,
            base + 0x1234,
            FrameNo(512),
            PageSize::Huge2M,
            PteFlags::user_ro(),
        );
        // Any address in the 2 MiB region hits the single entry.
        assert!(tlb.lookup(A, base).is_some());
        assert!(tlb.lookup(A, base + (HUGE_2M - 1)).is_some());
        assert!(tlb.lookup(A, base + HUGE_2M).is_none());
        assert_eq!(tlb.occupancy(), 1);
    }

    #[test]
    fn lru_eviction_within_set() {
        // 1 set, 2 ways: third distinct page evicts the least recent.
        let mut tlb = Tlb::new(1, 2);
        let va = |i: u64| VirtAddr(i * PAGE_SIZE);
        tlb.insert(A, va(1), FrameNo(1), PageSize::Base, PteFlags::user_rw());
        tlb.insert(A, va(2), FrameNo(2), PageSize::Base, PteFlags::user_rw());
        // Touch page 1 so page 2 is LRU.
        assert!(tlb.lookup(A, va(1)).is_some());
        tlb.insert(A, va(3), FrameNo(3), PageSize::Base, PteFlags::user_rw());
        assert!(tlb.lookup(A, va(1)).is_some());
        assert!(tlb.lookup(A, va(2)).is_none(), "LRU way evicted");
        assert!(tlb.lookup(A, va(3)).is_some());
    }

    #[test]
    fn capacity_thrashing_misses() {
        // Working set larger than the TLB must keep missing.
        let mut tlb = Tlb::new(4, 2); // 8 entries
        let pages = 64u64;
        for i in 0..pages {
            tlb.insert(
                A,
                VirtAddr(i * PAGE_SIZE),
                FrameNo(i),
                PageSize::Base,
                PteFlags::user_rw(),
            );
        }
        let hits = (0..pages)
            .filter(|i| tlb.lookup(A, VirtAddr(i * PAGE_SIZE)).is_some())
            .count();
        assert!(hits <= 8, "only the resident tail can hit, got {hits}");
    }

    #[test]
    fn invalidate_single_page() {
        let mut tlb = Tlb::default();
        let va = VirtAddr(0x3000);
        tlb.insert(A, va, FrameNo(5), PageSize::Base, PteFlags::user_rw());
        tlb.insert(
            A,
            va + PAGE_SIZE,
            FrameNo(6),
            PageSize::Base,
            PteFlags::user_rw(),
        );
        tlb.invalidate_page(A, va);
        assert!(tlb.lookup(A, va).is_none());
        assert!(tlb.lookup(A, va + PAGE_SIZE).is_some());
    }

    #[test]
    fn reinsert_updates_in_place() {
        let mut tlb = Tlb::default();
        let va = VirtAddr(0x1000);
        tlb.insert(A, va, FrameNo(1), PageSize::Base, PteFlags::user_ro());
        tlb.insert(A, va, FrameNo(1), PageSize::Base, PteFlags::user_rw());
        assert_eq!(tlb.occupancy(), 1);
        let (_, _, flags) = tlb.lookup(A, va).unwrap();
        assert!(flags.contains(PteFlags::WRITE));
    }

    #[test]
    fn flush_all_empties() {
        let mut tlb = Tlb::default();
        for i in 0..32u64 {
            tlb.insert(
                A,
                VirtAddr(i * PAGE_SIZE),
                FrameNo(i),
                PageSize::Base,
                PteFlags::user_rw(),
            );
        }
        assert!(tlb.occupancy() > 0);
        tlb.flush_all();
        assert_eq!(tlb.occupancy(), 0);
    }
}
