//! Set-associative translation lookaside buffer.
//!
//! Models a unified, ASID-tagged TLB. Capacity pressure is what makes
//! the paper's in-text observation reproducible: *"it was faster to
//! make a `read()` system call to read 16KB than to access data already
//! mapped into a process if it would cause TLB misses"* (§3.2/§4.3).

use crate::addr::{FrameNo, PageNo, PageSize, VirtAddr};
use crate::fasthash::FastMap;
use crate::pagetable::PteFlags;

/// Address-space identifier tagging TLB entries.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct Asid(pub u16);

#[derive(Clone, Copy, Debug)]
struct TlbEntry {
    asid: Asid,
    /// Virtual page of the mapping base (for huge pages, the first
    /// base page of the huge region).
    vpn: PageNo,
    frame: FrameNo,
    size: PageSize,
    flags: PteFlags,
    /// LRU timestamp.
    stamp: u64,
}

/// Hash key uniquely identifying a TLB entry (insert dedups on it).
type TlbKey = (Asid, PageNo, PageSize);

/// A set-associative TLB.
///
/// The per-set `Vec` order is the model: LRU eviction replaces the
/// *first* minimum-stamp way, so insertion order breaks ties exactly
/// as it always has. Two host-side accelerators sit on top and never
/// change an outcome:
///
/// * `index` maps every resident entry's key to its `(set, way)`
///   position, replacing the inner linear probes of `lookup`/`insert`
///   with one hash probe per page size;
/// * `last` remembers each ASID's most recent base-page hit (a small
///   direct-mapped array, no hashing) so the common access loop
///   revalidates one slot in O(1). Only base pages qualify: they are
///   probed first, so a valid cached base entry is always what the
///   size-ordered probe would have returned.
///
/// Both are revalidated or rebuilt on every mutation, so hit/miss
/// behaviour, stamps and eviction victims are identical to a plain
/// linear-scan implementation (see `tests/tlb_model.rs`).
#[derive(Debug)]
pub struct Tlb {
    sets: Vec<Vec<TlbEntry>>,
    assoc: usize,
    tick: u64,
    index: FastMap<TlbKey, (u32, u32)>,
    last: [Option<(Asid, PageNo, u32, u32)>; LAST_SLOTS],
}

/// Slots in the per-ASID last-translation cache (direct-mapped by the
/// low ASID bits; a collision just misses and repopulates).
const LAST_SLOTS: usize = 8;

#[inline]
fn last_slot(asid: Asid) -> usize {
    (asid.0 as usize) & (LAST_SLOTS - 1)
}

/// Default number of TLB entries (64 sets × 8 ways = 512, in the range
/// of a Skylake-class second-level TLB combined with the first level).
pub const DEFAULT_SETS: usize = 64;
/// Default associativity.
pub const DEFAULT_ASSOC: usize = 8;

impl Default for Tlb {
    fn default() -> Self {
        Tlb::new(DEFAULT_SETS, DEFAULT_ASSOC)
    }
}

impl Tlb {
    /// Create a TLB with `sets` sets of `assoc` ways.
    ///
    /// # Panics
    /// Panics unless `sets` is a nonzero power of two and `assoc > 0`.
    pub fn new(sets: usize, assoc: usize) -> Tlb {
        assert!(
            sets.is_power_of_two() && sets > 0,
            "sets must be a power of two"
        );
        assert!(assoc > 0, "associativity must be nonzero");
        Tlb {
            sets: vec![Vec::with_capacity(assoc); sets],
            assoc,
            tick: 0,
            index: FastMap::default(),
            last: [None; LAST_SLOTS],
        }
    }

    /// Total capacity in entries.
    pub fn capacity(&self) -> usize {
        self.sets.len() * self.assoc
    }

    /// Number of currently valid entries.
    pub fn occupancy(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }

    #[inline]
    fn set_index(&self, vpn: PageNo) -> usize {
        (vpn.0 as usize) & (self.sets.len() - 1)
    }

    /// Base virtual page of the mapping region containing `va` for a
    /// given page size.
    #[inline]
    fn region_vpn(va: VirtAddr, size: PageSize) -> PageNo {
        va.align_down(size.bytes()).page()
    }

    /// Rebuild `index` entries for one set after `Vec::retain`
    /// compacted it and shifted way positions.
    fn reindex_set(&mut self, set: usize) {
        for (way, e) in self.sets[set].iter().enumerate() {
            self.index
                .insert((e.asid, e.vpn, e.size), (set as u32, way as u32));
        }
    }

    /// Look up `va` for `asid`. On a hit, returns the mapping and
    /// refreshes its LRU stamp. The *caller* (the MMU) charges costs
    /// and counts hits/misses.
    pub fn lookup(&mut self, asid: Asid, va: VirtAddr) -> Option<(FrameNo, PageSize, PteFlags)> {
        self.tick += 1;
        let tick = self.tick;
        let base_vpn = Self::region_vpn(va, PageSize::Base);
        // Per-ASID last-translation cache: revalidate the remembered
        // slot before any hash probe. A stale slot simply fails the
        // key comparison and falls through.
        if let Some((a, vpn, set, way)) = self.last[last_slot(asid)] {
            if a == asid && vpn == base_vpn {
                if let Some(e) = self.sets[set as usize].get_mut(way as usize) {
                    if e.asid == asid && e.vpn == vpn && e.size == PageSize::Base {
                        e.stamp = tick;
                        return Some((e.frame, e.size, e.flags));
                    }
                }
            }
        }
        // A unified TLB probes with each supported page size (real
        // hardware splits structures; the effect is the same).
        for size in [PageSize::Base, PageSize::Huge2M, PageSize::Huge1G] {
            let vpn = if size == PageSize::Base {
                base_vpn
            } else {
                Self::region_vpn(va, size)
            };
            if let Some(&(set, way)) = self.index.get(&(asid, vpn, size)) {
                let e = &mut self.sets[set as usize][way as usize];
                debug_assert!(e.asid == asid && e.vpn == vpn && e.size == size);
                e.stamp = tick;
                if size == PageSize::Base {
                    self.last[last_slot(asid)] = Some((asid, vpn, set, way));
                }
                return Some((e.frame, e.size, e.flags));
            }
        }
        None
    }

    /// Non-mutating probe: would [`lookup`](Self::lookup) hit, and
    /// with what? Probes the same size order but refreshes no LRU
    /// stamp and touches no accelerator state, so the uniformity check
    /// of a fast-forwarded run is free of side effects.
    pub fn peek(&self, asid: Asid, va: VirtAddr) -> Option<(FrameNo, PageSize, PteFlags)> {
        for size in [PageSize::Base, PageSize::Huge2M, PageSize::Huge1G] {
            let vpn = Self::region_vpn(va, size);
            if let Some(&(set, way)) = self.index.get(&(asid, vpn, size)) {
                let e = &self.sets[set as usize][way as usize];
                debug_assert!(e.asid == asid && e.vpn == vpn && e.size == size);
                return Some((e.frame, e.size, e.flags));
            }
        }
        None
    }

    /// Advance the LRU clock by `n` ticks without touching any entry.
    ///
    /// [`lookup`](Self::lookup) ages the whole TLB even when it
    /// misses, so a fast-forwarded fault run — which proves its
    /// lookups would miss and skips them — must replay those ticks
    /// before each [`insert`](Self::insert) to leave stamps (and
    /// therefore future eviction victims) exactly where the
    /// interpreted run would have left them.
    pub fn advance_ticks(&mut self, n: u64) {
        self.tick += n;
    }

    /// Insert a translation, evicting the LRU way of the set if full.
    pub fn insert(
        &mut self,
        asid: Asid,
        va: VirtAddr,
        frame: FrameNo,
        size: PageSize,
        flags: PteFlags,
    ) {
        self.tick += 1;
        let vpn = Self::region_vpn(va, size);
        let set = self.set_index(vpn);
        let entry = TlbEntry {
            asid,
            vpn,
            frame,
            size,
            flags,
            stamp: self.tick,
        };
        if let Some(&(s, w)) = self.index.get(&(asid, vpn, size)) {
            self.sets[s as usize][w as usize] = entry;
            return;
        }
        let ways = self.sets[set].len();
        if ways < self.assoc {
            self.sets[set].push(entry);
            self.index
                .insert((asid, vpn, size), (set as u32, ways as u32));
            return;
        }
        // First minimum stamp wins, as in a front-to-back linear scan.
        let lru = self.sets[set]
            .iter()
            .enumerate()
            .min_by_key(|(_, e)| e.stamp)
            .map(|(i, _)| i)
            .expect("nonempty set");
        let old = self.sets[set][lru];
        self.sets[set][lru] = entry;
        self.index.remove(&(old.asid, old.vpn, old.size));
        self.index
            .insert((asid, vpn, size), (set as u32, lru as u32));
    }

    /// Invalidate the entry covering `va` in `asid` (INVLPG).
    pub fn invalidate_page(&mut self, asid: Asid, va: VirtAddr) {
        for size in [PageSize::Base, PageSize::Huge2M, PageSize::Huge1G] {
            let vpn = Self::region_vpn(va, size);
            if self.index.remove(&(asid, vpn, size)).is_some() {
                let set = self.set_index(vpn);
                self.sets[set].retain(|e| !(e.asid == asid && e.vpn == vpn && e.size == size));
                self.reindex_set(set);
            }
        }
    }

    /// Invalidate every entry belonging to `asid`.
    pub fn flush_asid(&mut self, asid: Asid) {
        self.last[last_slot(asid)] = None;
        self.index.retain(|&(a, _, _), _| a != asid);
        for set in 0..self.sets.len() {
            if self.sets[set].iter().any(|e| e.asid == asid) {
                self.sets[set].retain(|e| e.asid != asid);
                self.reindex_set(set);
            }
        }
    }

    /// Invalidate everything.
    pub fn flush_all(&mut self) {
        for set in &mut self.sets {
            set.clear();
        }
        self.index.clear();
        self.last = [None; LAST_SLOTS];
    }

    /// Check that the hash index mirrors the set arrays exactly
    /// (test/debug support; O(capacity)).
    pub fn check_index_consistency(&self) -> bool {
        let live: usize = self.sets.iter().map(Vec::len).sum();
        if live != self.index.len() {
            return false;
        }
        self.sets.iter().enumerate().all(|(set, ways)| {
            ways.iter().enumerate().all(|(way, e)| {
                self.index.get(&(e.asid, e.vpn, e.size))
                    == Some(&(set as u32, way as u32))
            })
        })
    }
}

/// Outcome of one [`AsidAllocator::alloc`] call.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AsidGrant {
    /// The granted identifier.
    pub asid: Asid,
    /// True when the ASID was recycled from an earlier generation —
    /// PCID-style, the caller must flush every CPU's translation
    /// state for it before reuse, because entries tagged with the
    /// previous owner may still be resident.
    pub needs_flush: bool,
}

/// Generational ASID/PCID allocator.
///
/// ASIDs are handed out sequentially first (`1, 2, 3, …` — ASID 0 is
/// reserved, as hardware reserves PCID 0 for the kernel), so a fresh
/// machine reproduces the exact sequence the old one-shot allocator
/// produced. Only once the 16-bit namespace is exhausted does the
/// allocator *roll over* into the next generation and start recycling
/// freed ASIDs; every recycled grant is marked [`AsidGrant::needs_flush`]
/// so stale translations from the previous owner are shot down before
/// reuse. Allocation fails only when every non-reserved ASID is live
/// at once.
#[derive(Debug, Default, Clone)]
pub struct AsidAllocator {
    /// Next never-granted ASID; `u16::MAX as u32 + 1` = frontier spent.
    next: u32,
    /// ASIDs returned by [`free`](Self::free), recycled LIFO once the
    /// frontier is spent.
    free: Vec<Asid>,
    /// 0 while the never-used frontier lasts; 1 once recycling began.
    generation: u64,
    /// Currently-live grants.
    live: u32,
}

impl AsidAllocator {
    /// Every ASID unallocated, frontier at 1.
    pub fn new() -> AsidAllocator {
        AsidAllocator {
            next: 1,
            free: Vec::new(),
            generation: 0,
            live: 0,
        }
    }

    /// Grant an ASID, or `None` when all 65535 assignable ASIDs are
    /// live simultaneously.
    pub fn alloc(&mut self) -> Option<AsidGrant> {
        if self.next <= u32::from(u16::MAX) {
            let asid = Asid(self.next as u16);
            self.next += 1;
            self.live += 1;
            return Some(AsidGrant {
                asid,
                needs_flush: false,
            });
        }
        let asid = self.free.pop()?;
        if self.generation == 0 {
            self.generation = 1; // first rollover: recycling begins
        }
        self.live += 1;
        Some(AsidGrant {
            asid,
            needs_flush: true,
        })
    }

    /// Return `asid` to the pool. It becomes eligible for recycling
    /// at the next rollover, never before.
    pub fn free(&mut self, asid: Asid) {
        debug_assert!(self.live > 0, "free without a live grant");
        self.live = self.live.saturating_sub(1);
        self.free.push(asid);
    }

    /// Currently-live grants.
    pub fn live(&self) -> u32 {
        self.live
    }

    /// 0 while grants still come from the never-used frontier; 1 once
    /// the namespace rolled over and recycling began.
    pub fn generation(&self) -> u64 {
        self.generation
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::{HUGE_2M, PAGE_SIZE};

    const A: Asid = Asid(1);
    const B: Asid = Asid(2);

    #[test]
    fn miss_then_hit() {
        let mut tlb = Tlb::default();
        let va = VirtAddr(0x1000);
        assert!(tlb.lookup(A, va).is_none());
        tlb.insert(A, va, FrameNo(9), PageSize::Base, PteFlags::user_rw());
        let (f, s, _) = tlb.lookup(A, va).unwrap();
        assert_eq!(f, FrameNo(9));
        assert_eq!(s, PageSize::Base);
        // Different offset in the same page still hits.
        assert!(tlb.lookup(A, va + 123).is_some());
        // Different page misses.
        assert!(tlb.lookup(A, va + PAGE_SIZE).is_none());
    }

    #[test]
    fn asids_are_isolated() {
        let mut tlb = Tlb::default();
        let va = VirtAddr(0x1000);
        tlb.insert(A, va, FrameNo(9), PageSize::Base, PteFlags::user_rw());
        assert!(tlb.lookup(B, va).is_none());
        tlb.flush_asid(A);
        assert!(tlb.lookup(A, va).is_none());
    }

    #[test]
    fn huge_entry_covers_whole_region() {
        let mut tlb = Tlb::default();
        let base = VirtAddr(HUGE_2M);
        tlb.insert(
            A,
            base + 0x1234,
            FrameNo(512),
            PageSize::Huge2M,
            PteFlags::user_ro(),
        );
        // Any address in the 2 MiB region hits the single entry.
        assert!(tlb.lookup(A, base).is_some());
        assert!(tlb.lookup(A, base + (HUGE_2M - 1)).is_some());
        assert!(tlb.lookup(A, base + HUGE_2M).is_none());
        assert_eq!(tlb.occupancy(), 1);
    }

    #[test]
    fn lru_eviction_within_set() {
        // 1 set, 2 ways: third distinct page evicts the least recent.
        let mut tlb = Tlb::new(1, 2);
        let va = |i: u64| VirtAddr(i * PAGE_SIZE);
        tlb.insert(A, va(1), FrameNo(1), PageSize::Base, PteFlags::user_rw());
        tlb.insert(A, va(2), FrameNo(2), PageSize::Base, PteFlags::user_rw());
        // Touch page 1 so page 2 is LRU.
        assert!(tlb.lookup(A, va(1)).is_some());
        tlb.insert(A, va(3), FrameNo(3), PageSize::Base, PteFlags::user_rw());
        assert!(tlb.lookup(A, va(1)).is_some());
        assert!(tlb.lookup(A, va(2)).is_none(), "LRU way evicted");
        assert!(tlb.lookup(A, va(3)).is_some());
    }

    #[test]
    fn capacity_thrashing_misses() {
        // Working set larger than the TLB must keep missing.
        let mut tlb = Tlb::new(4, 2); // 8 entries
        let pages = 64u64;
        for i in 0..pages {
            tlb.insert(
                A,
                VirtAddr(i * PAGE_SIZE),
                FrameNo(i),
                PageSize::Base,
                PteFlags::user_rw(),
            );
        }
        let hits = (0..pages)
            .filter(|i| tlb.lookup(A, VirtAddr(i * PAGE_SIZE)).is_some())
            .count();
        assert!(hits <= 8, "only the resident tail can hit, got {hits}");
    }

    #[test]
    fn invalidate_single_page() {
        let mut tlb = Tlb::default();
        let va = VirtAddr(0x3000);
        tlb.insert(A, va, FrameNo(5), PageSize::Base, PteFlags::user_rw());
        tlb.insert(
            A,
            va + PAGE_SIZE,
            FrameNo(6),
            PageSize::Base,
            PteFlags::user_rw(),
        );
        tlb.invalidate_page(A, va);
        assert!(tlb.lookup(A, va).is_none());
        assert!(tlb.lookup(A, va + PAGE_SIZE).is_some());
    }

    #[test]
    fn reinsert_updates_in_place() {
        let mut tlb = Tlb::default();
        let va = VirtAddr(0x1000);
        tlb.insert(A, va, FrameNo(1), PageSize::Base, PteFlags::user_ro());
        tlb.insert(A, va, FrameNo(1), PageSize::Base, PteFlags::user_rw());
        assert_eq!(tlb.occupancy(), 1);
        let (_, _, flags) = tlb.lookup(A, va).unwrap();
        assert!(flags.contains(PteFlags::WRITE));
    }

    #[test]
    fn flush_all_empties() {
        let mut tlb = Tlb::default();
        for i in 0..32u64 {
            tlb.insert(
                A,
                VirtAddr(i * PAGE_SIZE),
                FrameNo(i),
                PageSize::Base,
                PteFlags::user_rw(),
            );
        }
        assert!(tlb.occupancy() > 0);
        tlb.flush_all();
        assert_eq!(tlb.occupancy(), 0);
    }

    #[test]
    fn asid_allocation_is_sequential_first() {
        let mut a = AsidAllocator::new();
        for want in 1..=64u16 {
            let g = a.alloc().unwrap();
            assert_eq!(g.asid, Asid(want));
            assert!(!g.needs_flush, "frontier grants never need a flush");
        }
        assert_eq!(a.live(), 64);
        // Freeing does not change the sequence before rollover.
        a.free(Asid(3));
        a.free(Asid(7));
        assert_eq!(a.alloc().unwrap().asid, Asid(65));
        assert_eq!(a.generation(), 0);
    }

    #[test]
    fn asid_rollover_recycles_with_flush() {
        let mut a = AsidAllocator::new();
        for _ in 1..=u16::MAX {
            a.alloc().unwrap();
        }
        assert!(a.alloc().is_none(), "namespace fully live");
        a.free(Asid(100));
        a.free(Asid(200));
        let g = a.alloc().unwrap();
        assert_eq!(g.asid, Asid(200), "recycled LIFO");
        assert!(g.needs_flush, "recycled ASIDs must be flushed");
        assert_eq!(a.generation(), 1);
        let g = a.alloc().unwrap();
        assert_eq!(g.asid, Asid(100));
        assert!(g.needs_flush);
        assert!(a.alloc().is_none(), "live again at capacity");
        assert_eq!(a.live(), u32::from(u16::MAX));
    }
}
