//! # o1-hw — simulated hardware substrate for *Towards O(1) Memory*
//!
//! This crate models the hardware that the paper's measurements and
//! proposals rest on:
//!
//! * a physical memory with a volatile DRAM tier and a persistent NVM
//!   tier, sparse-backed so terabyte machines fit in a test process
//!   ([`phys`]);
//! * x86-64-style four-level page tables whose nodes are refcounted and
//!   shareable, implementing the paper's "pointer-swing" shared
//!   mappings ([`pagetable`]);
//! * a set-associative, ASID-tagged TLB ([`tlb`]);
//! * the **range translation** extension — range table plus range TLB —
//!   from Figures 4, 5 and 9 ([`range`]);
//! * an MMU that arbitrates between them and raises faults ([`mmu`]);
//! * a calibrated nanosecond cost model ([`cost`]) and a deterministic
//!   machine clock with performance counters ([`machine`], [`perf`]).
//!
//! Everything is deterministic: a workload's simulated duration is a
//! pure function of the operations it performs, which is exactly the
//! quantity the paper's figures plot.

pub mod addr;
pub mod arena;
pub mod cost;
pub mod dma;
pub mod fasthash;
pub mod hybrid;
pub mod machine;
pub mod mmu;
pub mod pagetable;
pub mod perf;
pub mod phys;
pub mod range;
pub mod tlb;

pub use arena::{Arena, Handle};
pub use fasthash::{FastMap, FastSet};

pub use addr::{
    pages_for, round_up_pages, FrameNo, PageNo, PageSize, PhysAddr, VirtAddr, HUGE_1G, HUGE_2M,
    PAGE_SHIFT, PAGE_SIZE, PT_ENTRIES, PT_LEVELS,
};
pub use cost::CostModel;
pub use dma::{DmaEngine, DmaMode, DMA_PAGE_NS, IOMMU_FAULT_NS, IOTLB_ENTRIES};
pub use hybrid::FastRegion;
pub use machine::{
    fastforward_default, set_fastforward_default, CpuId, Machine, MachineConfig, ObsMode, SimNs,
    MAX_CPUS,
};
pub use mmu::{span_within, Access, Mmu, Satisfied, TranslateError, Translated, WalkMode};
pub use o1_obs::{CostKind, OpKind, Subsystem};
pub use pagetable::{Entry, MapError, PageTables, PtNodeId, PteFlags, Translation};
pub use perf::{PerfCounters, PerfSnapshot};
pub use phys::{FrameImage, MemTier, PhysicalMemory};
pub use range::{RangeEntry, RangeError, RangeTable, RangeTlb};
pub use tlb::{Asid, AsidAllocator, AsidGrant, Tlb};
