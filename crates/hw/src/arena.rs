//! Generational arena — dense, index-based storage for hot kernel
//! object graphs.
//!
//! The simulated kernels used to keep their object graphs in
//! `HashMap`s keyed by small ids (`Pid`, VA bases, file chunk
//! numbers). Every simulated memory access walked at least one such
//! map, so the host paid a SipHash plus a probe per lookup for keys
//! that are trusted, fixed-width, and dense. An [`Arena`] replaces
//! the map with a `Vec` of slots addressed by [`Handle`]s: lookups are
//! one bounds check and one generation compare.
//!
//! Generations make stale handles safe: removing a slot bumps its
//! generation, so a [`Handle`] kept across a `remove` (a destroyed
//! process's `Pid`, say) misses instead of aliasing whatever object
//! reused the slot. This is host-side bookkeeping only — which slot an
//! object lands in can never affect a simulated number.

/// Index + generation reference to an [`Arena`] slot.
///
/// A handle is valid iff its generation matches the slot's current
/// generation; handles to removed entries go stale rather than
/// dangling.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct Handle {
    idx: u32,
    gen: u32,
}

impl Handle {
    /// Slot index (dense, reused after removal).
    #[inline]
    pub fn index(self) -> u32 {
        self.idx
    }

    /// Slot generation at the time this handle was issued.
    #[inline]
    pub fn generation(self) -> u32 {
        self.gen
    }
}

#[derive(Debug)]
struct Slot<T> {
    gen: u32,
    val: Option<T>,
}

/// A slotmap-style generational arena.
#[derive(Debug)]
pub struct Arena<T> {
    slots: Vec<Slot<T>>,
    free: Vec<u32>,
    len: usize,
}

impl<T> Default for Arena<T> {
    fn default() -> Self {
        Arena::new()
    }
}

impl<T> Arena<T> {
    /// Empty arena.
    pub fn new() -> Arena<T> {
        Arena {
            slots: Vec::new(),
            free: Vec::new(),
            len: 0,
        }
    }

    /// Number of live entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no entries are live.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Insert a value, reusing the most recently freed slot if any.
    /// The returned handle carries the slot's current generation.
    pub fn insert(&mut self, val: T) -> Handle {
        self.len += 1;
        match self.free.pop() {
            Some(idx) => {
                let slot = &mut self.slots[idx as usize];
                debug_assert!(slot.val.is_none(), "free list points at a live slot");
                slot.val = Some(val);
                Handle {
                    idx,
                    gen: slot.gen,
                }
            }
            None => {
                let idx = u32::try_from(self.slots.len()).expect("arena exceeds u32 slots");
                self.slots.push(Slot { gen: 0, val: Some(val) });
                Handle { idx, gen: 0 }
            }
        }
    }

    /// Remove the entry behind `h`, bumping the slot's generation so
    /// `h` (and every copy of it) goes stale. Returns `None` if the
    /// handle is already stale or out of range.
    pub fn remove(&mut self, h: Handle) -> Option<T> {
        let slot = self.slots.get_mut(h.idx as usize)?;
        if slot.gen != h.gen {
            return None;
        }
        let val = slot.val.take()?;
        slot.gen = slot.gen.wrapping_add(1);
        self.free.push(h.idx);
        self.len -= 1;
        Some(val)
    }

    /// Borrow the entry behind `h`; `None` for stale handles.
    #[inline]
    pub fn get(&self, h: Handle) -> Option<&T> {
        let slot = self.slots.get(h.idx as usize)?;
        if slot.gen != h.gen {
            return None;
        }
        slot.val.as_ref()
    }

    /// Mutably borrow the entry behind `h`; `None` for stale handles.
    #[inline]
    pub fn get_mut(&mut self, h: Handle) -> Option<&mut T> {
        let slot = self.slots.get_mut(h.idx as usize)?;
        if slot.gen != h.gen {
            return None;
        }
        slot.val.as_mut()
    }

    /// True if `h` refers to a live entry.
    #[inline]
    pub fn contains(&self, h: Handle) -> bool {
        self.get(h).is_some()
    }

    /// Iterate live entries in slot order (deterministic).
    pub fn iter(&self) -> impl Iterator<Item = (Handle, &T)> {
        self.slots.iter().enumerate().filter_map(|(i, s)| {
            s.val.as_ref().map(|v| {
                (
                    Handle {
                        idx: i as u32,
                        gen: s.gen,
                    },
                    v,
                )
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut a = Arena::new();
        let h1 = a.insert("one");
        let h2 = a.insert("two");
        assert_eq!(a.len(), 2);
        assert_eq!(a.get(h1), Some(&"one"));
        assert_eq!(a.get(h2), Some(&"two"));
        assert_eq!(a.remove(h1), Some("one"));
        assert_eq!(a.get(h1), None, "removed handle is stale");
        assert_eq!(a.remove(h1), None, "double remove misses");
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn slot_reuse_bumps_generation() {
        let mut a = Arena::new();
        let h1 = a.insert(10u32);
        a.remove(h1).unwrap();
        let h2 = a.insert(20u32);
        assert_eq!(h2.index(), h1.index(), "slot is reused");
        assert_ne!(h2.generation(), h1.generation());
        assert_eq!(a.get(h1), None, "stale handle misses the new tenant");
        assert_eq!(a.get(h2), Some(&20));
    }

    #[test]
    fn iteration_is_slot_ordered_and_skips_dead() {
        let mut a = Arena::new();
        let h0 = a.insert(0);
        let _h1 = a.insert(1);
        let _h2 = a.insert(2);
        a.remove(h0).unwrap();
        let vals: Vec<i32> = a.iter().map(|(_, &v)| v).collect();
        assert_eq!(vals, vec![1, 2]);
    }
}
