//! Utopia-style hashed fast region (arXiv:2211.12205).
//!
//! Utopia splits the address space between a *restrictive* region —
//! translated by a flat, hashed, direct-mapped table the hardware can
//! probe in one or two references — and a *flexible* region served by
//! conventional page tables. This module models the restrictive side:
//! a direct-mapped array of `(asid, vpage) → frame` slots indexed by a
//! multiplicative hash. A probe either hits (one tag compare, priced
//! as [`crate::cost::CostModel::hybrid_fast_hit`]) or misses and falls
//! back to the page-table walker; a fill after a successful walk
//! writes tag + payload ([`crate::cost::CostModel::hybrid_fast_fill`])
//! and evicts whatever the slot held — the direct-mapped conflict
//! eviction *is* the residency policy.
//!
//! The structure holds no costs itself: callers charge through the
//! [`Machine`](crate::Machine) so the ledger stays conservative.

use crate::addr::FrameNo;
use crate::pagetable::PteFlags;
use crate::tlb::Asid;

/// One resident restrictive-region translation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct FastSlot {
    asid: Asid,
    vpage: u64,
    frame: FrameNo,
    flags: PteFlags,
}

/// Direct-mapped, hash-indexed fast translation region.
///
/// Capacity is rounded up to a power of two so indexing is a mask; a
/// capacity of zero models "no fast region" (every probe misses).
#[derive(Debug)]
pub struct FastRegion {
    slots: Vec<Option<FastSlot>>,
}

impl FastRegion {
    /// A fast region with (at least) `slots` direct-mapped entries.
    pub fn new(slots: usize) -> FastRegion {
        FastRegion {
            slots: vec![None; slots.next_power_of_two() * usize::from(slots > 0)],
        }
    }

    /// Number of direct-mapped slots (0 = region disabled).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Slots currently holding a translation.
    pub fn occupied(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// Deterministic multiplicative hash of the tag — the simulated
    /// stand-in for Utopia's hashed index function.
    fn slot_of(&self, asid: Asid, vpage: u64) -> usize {
        let mut h = vpage.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        h ^= u64::from(asid.0).wrapping_mul(0xC2B2_AE3D_27D4_EB4F);
        h ^= h >> 29;
        (h as usize) & (self.slots.len() - 1)
    }

    /// Probe the region. Hit iff the indexed slot's tag matches.
    pub fn lookup(&self, asid: Asid, vpage: u64) -> Option<(FrameNo, PteFlags)> {
        if self.slots.is_empty() {
            return None;
        }
        self.slots[self.slot_of(asid, vpage)]
            .filter(|s| s.asid == asid && s.vpage == vpage)
            .map(|s| (s.frame, s.flags))
    }

    /// Install a translation, evicting the slot's previous occupant
    /// (direct-mapped). Returns true when an unrelated entry was
    /// evicted.
    pub fn insert(&mut self, asid: Asid, vpage: u64, frame: FrameNo, flags: PteFlags) -> bool {
        if self.slots.is_empty() {
            return false;
        }
        let idx = self.slot_of(asid, vpage);
        let evicted = self.slots[idx].is_some_and(|s| s.asid != asid || s.vpage != vpage);
        self.slots[idx] = Some(FastSlot {
            asid,
            vpage,
            frame,
            flags,
        });
        evicted
    }

    /// Drop every translation tagged with `asid` (ASID shootdown).
    pub fn remove_asid(&mut self, asid: Asid) {
        for slot in &mut self.slots {
            if slot.is_some_and(|s| s.asid == asid) {
                *slot = None;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_asid_isolation() {
        let mut fr = FastRegion::new(64);
        assert_eq!(fr.capacity(), 64);
        let (a1, a2) = (Asid(1), Asid(2));
        fr.insert(a1, 7, FrameNo(100), PteFlags::user_rw());
        assert_eq!(
            fr.lookup(a1, 7),
            Some((FrameNo(100), PteFlags::user_rw()))
        );
        assert_eq!(fr.lookup(a2, 7), None, "tags include the ASID");
        fr.remove_asid(a1);
        assert_eq!(fr.lookup(a1, 7), None);
        assert_eq!(fr.occupied(), 0);
    }

    #[test]
    fn direct_mapped_conflicts_evict() {
        let mut fr = FastRegion::new(1);
        let a = Asid(3);
        assert!(!fr.insert(a, 1, FrameNo(1), PteFlags::user_ro()));
        // Same slot, different tag: the newcomer wins.
        assert!(fr.insert(a, 2, FrameNo(2), PteFlags::user_ro()));
        assert_eq!(fr.lookup(a, 1), None);
        assert_eq!(fr.lookup(a, 2), Some((FrameNo(2), PteFlags::user_ro())));
        // Re-inserting the resident tag is a refresh, not an eviction.
        assert!(!fr.insert(a, 2, FrameNo(9), PteFlags::user_rw()));
        assert_eq!(fr.lookup(a, 2), Some((FrameNo(9), PteFlags::user_rw())));
    }

    #[test]
    fn zero_capacity_region_is_inert() {
        let mut fr = FastRegion::new(0);
        assert_eq!(fr.capacity(), 0);
        assert!(!fr.insert(Asid(1), 5, FrameNo(5), PteFlags::user_rw()));
        assert_eq!(fr.lookup(Asid(1), 5), None);
    }

    #[test]
    fn capacity_rounds_to_power_of_two() {
        assert_eq!(FastRegion::new(100).capacity(), 128);
        assert_eq!(FastRegion::new(1).capacity(), 1);
    }
}
