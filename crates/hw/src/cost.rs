//! Calibrated cost model for the simulated machine.
//!
//! Every primitive operation the simulated hardware or kernel performs
//! charges a fixed number of nanoseconds to the machine clock. The
//! defaults below are calibrated against the measurements reported in
//! *Towards O(1) Memory* (HotOS '17) and its companion course report:
//!
//! * an `mmap(MAP_PRIVATE)` of a tmpfs file takes ≈ 8 µs regardless of
//!   size (§4, "it takes almost 8 micro-seconds in TMPFS"), and
//!   ≈ 15 µs on DAX;
//! * populating page tables costs roughly 0.5–1 µs per 4 KiB page, so
//!   `MAP_POPULATE` of a 1 MiB file lands in the low hundreds of µs
//!   (Figure 1a/6a);
//! * a minor page fault costs ≈ 2 µs (trap + handler), making demand
//!   faulting a large file "more than 50x" the cost of touching a
//!   pre-populated mapping (Figure 1b/6b);
//! * NVM writes are several times slower than DRAM writes, reads
//!   modestly slower (3D XPoint projections cited in §2).
//!
//! The model is deliberately flat: no cache hierarchy, no pipeline.
//! What the paper's figures measure is *operation counts* (PTE writes,
//! faults, walks) multiplied by roughly constant per-operation costs,
//! and that is exactly what this model computes. All costs are public
//! and per-[`Machine`](crate::machine::Machine) so experiments can run
//! sensitivity sweeps.

use o1_obs::CostKind;

use crate::addr::PAGE_SIZE;

/// Per-operation costs in nanoseconds.
///
/// See the module documentation for the calibration sources. Fields
/// are grouped by the subsystem that charges them.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CostModel {
    // ---- CPU / privilege crossings ----
    /// One user→kernel→user system-call round trip.
    pub syscall: u64,
    /// Page-fault exception entry + IRET, excluding the handler body.
    pub fault_trap: u64,
    /// Fixed handler-body overhead per fault (VMA lookup, bookkeeping).
    pub fault_handler_base: u64,

    // ---- Memory device ----
    /// One cache-line-granularity DRAM read performed by a program.
    pub mem_read_dram: u64,
    /// One cache-line-granularity DRAM write performed by a program.
    pub mem_write_dram: u64,
    /// One NVM read (3D XPoint-class persistent memory).
    pub mem_read_nvm: u64,
    /// One NVM write (persistent memory; includes write-queue effects).
    pub mem_write_nvm: u64,
    /// Zeroing one 4 KiB page in DRAM.
    pub zero_page_dram: u64,
    /// Zeroing one 4 KiB page in NVM.
    pub zero_page_nvm: u64,
    /// Copying one 4 KiB page (e.g., user↔kernel copy in `read()`).
    pub copy_page: u64,

    // ---- Address translation ----
    /// TLB hit (effectively free; charged so counters stay honest).
    pub tlb_hit: u64,
    /// One memory reference of the hardware page-table walker. A full
    /// 4-level walk costs `4 * ptw_level_ref` plus the TLB fill.
    pub ptw_level_ref: u64,
    /// Inserting a translation into the TLB after a walk.
    pub tlb_fill: u64,
    /// Flushing one TLB entry locally (INVLPG-class).
    pub tlb_invlpg: u64,
    /// Flushing an entire address space's TLB entries.
    pub tlb_flush_asid: u64,
    /// Remote-TLB shootdown cost per remote CPU (IPI + ack).
    pub tlb_shootdown_percpu: u64,
    /// Range-TLB hit.
    pub rtlb_hit: u64,
    /// Walking the in-memory range table on a range-TLB miss
    /// (binary search over a compact table: ~2 memory references).
    pub range_walk: u64,
    /// Inserting an entry into the range TLB.
    pub rtlb_fill: u64,
    /// Hit in a hybrid mechanism's hashed, direct-mapped fast region:
    /// one probe of a flat in-memory table (single cache-line read +
    /// tag compare). Slightly above a TLB hit because the table lives
    /// in memory, far below a multi-level walk.
    pub hybrid_fast_hit: u64,
    /// Installing a translation into the fast region after a page walk
    /// resolved it: one tag + PTE-sized payload write into the
    /// direct-mapped slot (possibly evicting the conflicting entry).
    pub hybrid_fast_fill: u64,

    // ---- Page tables (software cost of maintaining them) ----
    /// Writing one page-table entry.
    pub pte_write: u64,
    /// Allocating and initialising one page-table node (a 4 KiB frame).
    pub pt_node_alloc: u64,
    /// Freeing one page-table node.
    pub pt_node_free: u64,

    // ---- Physical allocators ----
    /// Buddy allocator: one order-0 allocation (fast path).
    pub buddy_alloc: u64,
    /// Buddy allocator: extra cost per split/coalesce level.
    pub buddy_level: u64,
    /// Buddy allocator: one free.
    pub buddy_free: u64,
    /// Extent/bitmap allocator: one allocation, independent of length.
    pub extent_alloc: u64,
    /// Extent/bitmap allocator: one free, independent of length.
    pub extent_free: u64,
    /// Slab allocator: one object allocation or free (fast path).
    pub slab_op: u64,
    /// Generating a fresh per-file encryption key (crypto-erase).
    pub key_gen: u64,
    /// Dropping a per-file encryption key on erase: zeroizing the key
    /// material and unhooking it from the keyring. O(1) regardless of
    /// file size — the whole point of crypto-erase.
    pub key_drop: u64,

    // ---- VM bookkeeping ----
    /// Creating a VMA and linking it into the address-space tree.
    pub vma_create: u64,
    /// Looking up the VMA covering an address.
    pub vma_find: u64,
    /// Removing a VMA.
    pub vma_destroy: u64,
    /// Fixed `mmap` path cost beyond the syscall (fd/file resolution,
    /// accounting, security hooks). Calibrated so MAP_PRIVATE ≈ 8 µs.
    pub mmap_fixed: u64,
    /// Touching one page's `struct page` metadata (flags, LRU, counts).
    pub page_meta_update: u64,
    /// Examining one page during a reclaim scan (clock/2Q).
    pub reclaim_scan_page: u64,
    /// Writing one page to the swap device.
    pub swap_out_page: u64,
    /// Reading one page back from the swap device (major-fault I/O).
    pub swap_in_page: u64,
    /// Pinning or unpinning one page for device access.
    pub pin_page: u64,
    /// Migrating one 4 KiB page between memory tiers: a streamed read
    /// of the source plus a streamed write of the destination (NVM
    /// write bandwidth bound, cf. `zero_page_nvm` = 850 for the write
    /// half alone) plus the PTE rewrite and tiering bookkeeping.
    pub page_migrate: u64,

    // ---- File system ----
    /// Path lookup of one name component.
    pub fs_lookup: u64,
    /// Creating an inode.
    pub fs_create_inode: u64,
    /// Removing an inode.
    pub fs_remove_inode: u64,
    /// Reading or updating one extent-tree entry.
    pub fs_extent_op: u64,
    /// Appending one record to the metadata journal (NVM write + fence).
    pub journal_record: u64,
    /// Journal commit (fence + commit record).
    pub journal_commit: u64,
    /// Fixed `read()`/`write()` syscall body beyond the copy itself.
    pub file_io_fixed: u64,
}

impl CostModel {
    /// Cost model for a tmpfs-on-DRAM machine, matching the paper's
    /// TMPFS measurements.
    pub fn tmpfs_dram() -> Self {
        CostModel {
            syscall: 500,
            fault_trap: 2000,
            fault_handler_base: 400,

            mem_read_dram: 20,
            mem_write_dram: 25,
            mem_read_nvm: 60,
            mem_write_nvm: 180,
            zero_page_dram: 250,
            zero_page_nvm: 850,
            copy_page: 400,

            tlb_hit: 1,
            // Paging-structure caches keep most walk references on-chip,
            // so an average walk level costs well under a DRAM access.
            ptw_level_ref: 8,
            tlb_fill: 5,
            tlb_invlpg: 120,
            tlb_flush_asid: 250,
            tlb_shootdown_percpu: 900,
            rtlb_hit: 1,
            range_walk: 16,
            rtlb_fill: 5,
            // One hashed probe of a flat restrictive-region table
            // (Utopia-style): a cache-line read + tag compare. Twice
            // a TLB hit, an order of magnitude under a 4-level walk
            // (4 * ptw_level_ref + tlb_fill = 37).
            hybrid_fast_hit: 2,
            // Tag + payload store into the direct-mapped slot; no
            // allocation, no tree maintenance.
            hybrid_fast_fill: 8,

            pte_write: 55,
            pt_node_alloc: 320,
            pt_node_free: 150,

            buddy_alloc: 130,
            buddy_level: 25,
            buddy_free: 110,
            extent_alloc: 260,
            extent_free: 200,
            slab_op: 45,
            key_gen: 320,
            // Zeroize 32 bytes of key material + keyring unlink —
            // cheaper than generating (no entropy pool round trip).
            key_drop: 90,

            vma_create: 900,
            vma_find: 140,
            vma_destroy: 500,
            mmap_fixed: 6600,
            page_meta_update: 40,
            reclaim_scan_page: 70,
            swap_out_page: 9000,
            swap_in_page: 12000,
            pin_page: 180,
            // 4 KiB tier migration ≈ sequential 4 KiB NVM write (the
            // bound; cf. zero_page_nvm = 850) + 4 KiB DRAM read + PTE
            // rewrite + bookkeeping. Far below swap_out_page (9000):
            // NVM is memory, not a block device.
            page_migrate: 1500,

            fs_lookup: 650,
            fs_create_inode: 1400,
            fs_remove_inode: 900,
            fs_extent_op: 120,
            journal_record: 500,
            journal_commit: 700,
            file_io_fixed: 600,
        }
    }

    /// Cost model matching the companion report's DAX measurements:
    /// identical structure, but the fixed `mmap` path is roughly twice
    /// as expensive (≈ 15 µs vs ≈ 8 µs) and data lives in NVM.
    pub fn dax_nvm() -> Self {
        CostModel {
            mmap_fixed: 13900,
            ..Self::tmpfs_dram()
        }
    }

    /// Cost of zeroing `bytes` bytes residing in DRAM.
    #[inline]
    pub fn zero_bytes_dram(&self, bytes: u64) -> u64 {
        bytes.div_ceil(PAGE_SIZE) * self.zero_page_dram
    }

    /// Cost of zeroing `bytes` bytes residing in NVM.
    #[inline]
    pub fn zero_bytes_nvm(&self, bytes: u64) -> u64 {
        bytes.div_ceil(PAGE_SIZE) * self.zero_page_nvm
    }

    /// Cost of a full page-table walk that touches `levels` node
    /// references (4 on a leaf hit, fewer when the walk aborts early).
    #[inline]
    pub fn walk(&self, levels: u8) -> u64 {
        self.ptw_level_ref * levels as u64
    }

    /// Unit cost of one primitive of `kind` — the bridge between the
    /// ledger's tags and this table. Only the genuinely-external kinds
    /// (device DMA constants, whose cost the `DmaEngine` owns) and
    /// [`CostKind::Untagged`] return 0; charge those with
    /// `Machine::charge_tagged`.
    #[inline]
    pub fn unit(&self, kind: CostKind) -> u64 {
        match kind {
            CostKind::Syscall => self.syscall,
            CostKind::FaultTrap => self.fault_trap,
            CostKind::FaultHandlerBase => self.fault_handler_base,
            CostKind::MemReadDram => self.mem_read_dram,
            CostKind::MemWriteDram => self.mem_write_dram,
            CostKind::MemReadNvm => self.mem_read_nvm,
            CostKind::MemWriteNvm => self.mem_write_nvm,
            CostKind::ZeroPageDram => self.zero_page_dram,
            CostKind::ZeroPageNvm => self.zero_page_nvm,
            CostKind::CopyPage => self.copy_page,
            CostKind::TlbHit => self.tlb_hit,
            CostKind::PtwLevelRef => self.ptw_level_ref,
            CostKind::TlbFill => self.tlb_fill,
            CostKind::TlbInvlpg => self.tlb_invlpg,
            CostKind::TlbFlushAsid => self.tlb_flush_asid,
            CostKind::TlbShootdownPercpu => self.tlb_shootdown_percpu,
            CostKind::RtlbHit => self.rtlb_hit,
            CostKind::RangeWalk => self.range_walk,
            CostKind::RtlbFill => self.rtlb_fill,
            CostKind::HybridFastHit => self.hybrid_fast_hit,
            CostKind::HybridFastFill => self.hybrid_fast_fill,
            CostKind::PteWrite => self.pte_write,
            CostKind::PtNodeAlloc => self.pt_node_alloc,
            CostKind::PtNodeFree => self.pt_node_free,
            CostKind::BuddyAlloc => self.buddy_alloc,
            CostKind::BuddyLevel => self.buddy_level,
            CostKind::BuddyFree => self.buddy_free,
            CostKind::ExtentAlloc => self.extent_alloc,
            CostKind::ExtentFree => self.extent_free,
            CostKind::SlabOp => self.slab_op,
            CostKind::KeyGen => self.key_gen,
            CostKind::KeyDrop => self.key_drop,
            CostKind::VmaCreate => self.vma_create,
            CostKind::VmaFind => self.vma_find,
            CostKind::VmaDestroy => self.vma_destroy,
            CostKind::MmapFixed => self.mmap_fixed,
            CostKind::PageMetaUpdate => self.page_meta_update,
            CostKind::ReclaimScanPage => self.reclaim_scan_page,
            CostKind::SwapOutPage => self.swap_out_page,
            CostKind::SwapInPage => self.swap_in_page,
            CostKind::PinPage => self.pin_page,
            CostKind::PageMigrate => self.page_migrate,
            CostKind::FsLookup => self.fs_lookup,
            CostKind::FsCreateInode => self.fs_create_inode,
            CostKind::FsRemoveInode => self.fs_remove_inode,
            CostKind::FsExtentOp => self.fs_extent_op,
            CostKind::JournalRecord => self.journal_record,
            CostKind::JournalCommit => self.journal_commit,
            CostKind::FileIoFixed => self.file_io_fixed,
            CostKind::DmaPage | CostKind::IommuFault | CostKind::Untagged => 0,
        }
    }
}

impl Default for CostModel {
    fn default() -> Self {
        Self::tmpfs_dram()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_constants() {
        let c = CostModel::default();
        // MAP_PRIVATE mmap ≈ 8 µs: syscall + mmap_fixed + vma_create.
        let mmap_private = c.syscall + c.mmap_fixed + c.vma_create;
        assert!(
            (7_000..9_000).contains(&mmap_private),
            "mmap_private = {mmap_private} ns, want ≈ 8 µs"
        );
        // DAX mmap ≈ 15 µs.
        let d = CostModel::dax_nvm();
        let mmap_dax = d.syscall + d.mmap_fixed + d.vma_create;
        assert!(
            (14_000..16_000).contains(&mmap_dax),
            "mmap_dax = {mmap_dax} ns, want ≈ 15 µs"
        );
        // Minor fault ≈ 2 µs before per-page work.
        assert!((1_500..2_500).contains(&(c.fault_trap + c.fault_handler_base)));
    }

    #[test]
    fn demand_vs_populate_ratio_exceeds_50x() {
        // The figure-1b claim: touching each page of a demand-mapped
        // file costs > 50x touching a pre-populated one. Per page:
        // demand = fault + handler + alloc + zero + pte + walk;
        // populate-read = TLB miss walk only.
        let c = CostModel::default();
        let demand = c.fault_trap
            + c.fault_handler_base
            + c.vma_find
            + c.buddy_alloc
            + c.zero_page_dram
            + c.pte_write
            + c.page_meta_update
            + c.walk(4)
            + c.tlb_fill;
        let populated = c.walk(4) + c.tlb_fill;
        assert!(
            demand > 50 * populated,
            "demand {demand} vs populated {populated}: ratio {}",
            demand / populated
        );
    }

    #[test]
    fn zero_cost_scales_per_page() {
        let c = CostModel::default();
        assert_eq!(c.zero_bytes_dram(0), 0);
        assert_eq!(c.zero_bytes_dram(1), c.zero_page_dram);
        assert_eq!(c.zero_bytes_dram(PAGE_SIZE * 3), 3 * c.zero_page_dram);
        assert!(c.zero_bytes_nvm(PAGE_SIZE) > c.zero_bytes_dram(PAGE_SIZE));
    }

    #[test]
    fn nvm_writes_cost_more_than_dram() {
        let c = CostModel::default();
        assert!(c.mem_write_nvm > 2 * c.mem_write_dram);
        assert!(c.mem_read_nvm > c.mem_read_dram);
    }
}
