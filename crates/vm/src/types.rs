//! Kernel-facing types shared by the baseline and file-only kernels.

use core::fmt;

use o1_memfs::FsError;

/// Identifies one simulated CPU. Typed so CPU ids never travel as
/// bare integers through public kernel signatures; re-exported from
/// the hardware layer, where per-CPU translation caches live.
pub use o1_hw::CpuId;

/// Process identifier.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct Pid(pub u32);

/// Mapping protection.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum Prot {
    /// Read-only.
    Read,
    /// Read + write.
    ReadWrite,
    /// Read + execute (code segments).
    ReadExec,
}

impl Prot {
    /// True if stores are allowed.
    pub fn writable(self) -> bool {
        matches!(self, Prot::ReadWrite)
    }
}

/// What backs a mapping.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Backing {
    /// Anonymous memory (zero-filled, process-private).
    Anon,
    /// A file, starting at the given byte offset.
    File {
        /// File being mapped.
        id: o1_memfs::FileId,
        /// Byte offset of the mapping's start within the file.
        offset: u64,
    },
}

/// mmap-style flags.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct MapFlags {
    /// Pre-populate page tables (MAP_POPULATE) instead of demand
    /// paging.
    pub populate: bool,
    /// Shared (writes visible through the file) vs private
    /// (copy-on-write).
    pub shared: bool,
}

impl MapFlags {
    /// Demand-paged private mapping (MAP_PRIVATE).
    pub const fn private() -> MapFlags {
        MapFlags {
            populate: false,
            shared: false,
        }
    }

    /// Pre-populated private mapping (MAP_PRIVATE | MAP_POPULATE).
    pub const fn private_populate() -> MapFlags {
        MapFlags {
            populate: true,
            shared: false,
        }
    }

    /// Demand-paged shared mapping (MAP_SHARED).
    pub const fn shared() -> MapFlags {
        MapFlags {
            populate: false,
            shared: true,
        }
    }

    /// Pre-populated shared mapping (MAP_SHARED | MAP_POPULATE).
    pub const fn shared_populate() -> MapFlags {
        MapFlags {
            populate: true,
            shared: true,
        }
    }
}

/// Kernel call errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum VmError {
    /// Unknown process.
    NoProcess,
    /// Address not covered by any mapping (SIGSEGV).
    BadAddress,
    /// Access violates the mapping's protection (SIGSEGV).
    ProtectionFault,
    /// Out of physical memory (after reclaim).
    NoMemory,
    /// Malformed range (unaligned, zero-length, or not a mapping
    /// boundary).
    BadRange,
    /// The process table is full (all 16-bit ASIDs are live).
    ProcessLimit,
    /// Machine configuration rejected at build time (`cpus == 0` or
    /// `cpus > o1_hw::MAX_CPUS`).
    InvalidConfig,
    /// Underlying file-system error.
    Fs(FsError),
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmError::NoProcess => write!(f, "no such process"),
            VmError::BadAddress => write!(f, "bad address (SIGSEGV)"),
            VmError::ProtectionFault => write!(f, "protection fault (SIGSEGV)"),
            VmError::NoMemory => write!(f, "out of memory"),
            VmError::BadRange => write!(f, "bad range"),
            VmError::ProcessLimit => write!(f, "process table full"),
            VmError::InvalidConfig => write!(f, "invalid machine configuration"),
            VmError::Fs(e) => write!(f, "file system: {e}"),
        }
    }
}

impl std::error::Error for VmError {}

impl From<FsError> for VmError {
    fn from(e: FsError) -> VmError {
        match e {
            FsError::NoSpace | FsError::QuotaExceeded => VmError::NoMemory,
            other => VmError::Fs(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prot_writability() {
        assert!(!Prot::Read.writable());
        assert!(Prot::ReadWrite.writable());
        assert!(!Prot::ReadExec.writable());
    }

    #[test]
    fn flag_constructors() {
        assert!(!MapFlags::private().populate);
        assert!(MapFlags::private_populate().populate);
        assert!(MapFlags::shared().shared);
        assert!(MapFlags::shared_populate().populate && MapFlags::shared_populate().shared);
    }

    #[test]
    fn fs_errors_convert() {
        assert_eq!(VmError::from(FsError::NoSpace), VmError::NoMemory);
        assert_eq!(
            VmError::from(FsError::NotFound),
            VmError::Fs(FsError::NotFound)
        );
    }
}
