//! # o1-vm — the baseline Linux-like virtual memory system
//!
//! The *status quo* design that *Towards O(1) Memory* argues against,
//! implemented in full so every comparison in the paper is runnable:
//!
//! * [`vma`] — VMA trees with region merging;
//! * [`kernel`] — `mmap`/`munmap`/`mprotect`/`madvise`, demand paging
//!   vs `MAP_POPULATE`, COW (fork and private file mappings), page
//!   pinning, per-page teardown;
//! * [`page_meta`] — the `struct page` model (25 flags, 64 B/frame);
//! * [`reclaim`] — clock and 2Q scanning plus a swap device;
//! * [`api`] — the [`api::MemSys`] trait shared with the file-only
//!   memory kernel so workloads drive both identically.

pub mod api;
pub mod kernel;
pub mod page_meta;
pub mod proc_table;
pub mod reclaim;
pub mod runs;
pub mod types;
pub mod vma;

pub use api::{validate_machine_config, Erased, MemSys, OnCpu};
pub use proc_table::ProcTable;
pub use runs::AccessRun;
pub use kernel::{BaselineBuilder, BaselineConfig, BaselineKernel, ThpMode, MMAP_BASE};
pub use page_meta::{PageFlag, PageMeta, PageMetaTable, PAGE_FLAG_COUNT, STRUCT_PAGE_BYTES};
pub use reclaim::{LruLists, ReclaimPolicy, ScanDecision, SwapDevice, SwapSlot};
pub use types::{Backing, CpuId, MapFlags, Pid, Prot, VmError};
pub use vma::{Vma, VmaMap};
