//! Per-page metadata — the model of Linux's `struct page`.
//!
//! §2: *"the Linux PAGE structure has 25 separate flags to track memory
//! status and 38 fields (many overlapping in unions)... Much of the
//! information tracked by the memory manager is either unnecessary or
//! can be tracked at much coarser granularity."* The baseline kernel
//! maintains one [`PageMeta`] per physical frame — a flags word with
//! the 25 Linux page flags, a map count, and a reverse-mapping list —
//! and the T-META experiment weighs this against file-only memory's
//! bitmap + extent metadata.

use o1_hw::{FrameNo, VirtAddr};

use crate::types::Pid;

/// The 25 page flags of the Linux `struct page` (as of the paper's
/// writing; enum values are bit positions in [`PageMeta::flags`]).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[allow(missing_docs)]
pub enum PageFlag {
    Locked = 0,
    Error = 1,
    Referenced = 2,
    Uptodate = 3,
    Dirty = 4,
    Lru = 5,
    Active = 6,
    Slab = 7,
    OwnerPriv1 = 8,
    Arch1 = 9,
    Reserved = 10,
    Private = 11,
    Private2 = 12,
    Writeback = 13,
    Head = 14,
    Swapcache = 15,
    Mappedtodisk = 16,
    Reclaim = 17,
    Swapbacked = 18,
    Unevictable = 19,
    Mlocked = 20,
    Uncached = 21,
    Hwpoison = 22,
    Young = 23,
    Idle = 24,
}

/// Number of modelled page flags.
pub const PAGE_FLAG_COUNT: u32 = 25;

/// Bytes one `struct page` occupies on x86-64 Linux. Used for the
/// metadata-footprint experiment (T-META).
pub const STRUCT_PAGE_BYTES: u64 = 64;

/// Per-frame metadata record.
#[derive(Clone, Debug, Default)]
pub struct PageMeta {
    /// Bit i set ⇔ `PageFlag` with value i is set.
    pub flags: u32,
    /// Number of page-table entries referencing this frame.
    pub mapcount: u32,
    /// Pin count (DMA / device access); pinned pages are unevictable.
    pub pins: u32,
    /// Reverse mappings: (process, virtual page base) pairs.
    pub rmap: Vec<(Pid, VirtAddr)>,
}

impl PageMeta {
    /// Test a flag.
    #[inline]
    pub fn test(&self, f: PageFlag) -> bool {
        self.flags >> (f as u32) & 1 == 1
    }

    /// Set a flag.
    #[inline]
    pub fn set(&mut self, f: PageFlag) {
        self.flags |= 1 << (f as u32);
    }

    /// Clear a flag.
    #[inline]
    pub fn clear(&mut self, f: PageFlag) {
        self.flags &= !(1 << (f as u32));
    }

    /// Test-and-clear, as reclaim does with Referenced.
    #[inline]
    pub fn test_and_clear(&mut self, f: PageFlag) -> bool {
        let was = self.test(f);
        self.clear(f);
        was
    }
}

/// The frame-indexed metadata table (`mem_map` in Linux terms).
#[derive(Debug)]
pub struct PageMetaTable {
    table: Vec<PageMeta>,
}

impl PageMetaTable {
    /// One record per frame of a machine with `frames` frames.
    pub fn new(frames: u64) -> PageMetaTable {
        PageMetaTable {
            table: vec![PageMeta::default(); frames as usize],
        }
    }

    /// Borrow the record for `frame`.
    pub fn get(&self, frame: FrameNo) -> &PageMeta {
        &self.table[frame.0 as usize]
    }

    /// Mutably borrow the record for `frame`.
    pub fn get_mut(&mut self, frame: FrameNo) -> &mut PageMeta {
        &mut self.table[frame.0 as usize]
    }

    /// Reset the record for a frame returning to the allocator.
    pub fn reset(&mut self, frame: FrameNo) {
        self.table[frame.0 as usize] = PageMeta::default();
    }

    /// Total metadata footprint in bytes: the linear cost the paper
    /// calls out (64 bytes per 4 KiB frame ⇒ 1.5% of all memory).
    pub fn metadata_bytes(&self) -> u64 {
        self.table.len() as u64 * STRUCT_PAGE_BYTES
    }

    /// Number of frames tracked.
    pub fn len(&self) -> u64 {
        self.table.len() as u64
    }

    /// True if the table is empty.
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_bits_are_distinct() {
        let flags = [
            PageFlag::Locked,
            PageFlag::Error,
            PageFlag::Referenced,
            PageFlag::Uptodate,
            PageFlag::Dirty,
            PageFlag::Lru,
            PageFlag::Active,
            PageFlag::Slab,
            PageFlag::OwnerPriv1,
            PageFlag::Arch1,
            PageFlag::Reserved,
            PageFlag::Private,
            PageFlag::Private2,
            PageFlag::Writeback,
            PageFlag::Head,
            PageFlag::Swapcache,
            PageFlag::Mappedtodisk,
            PageFlag::Reclaim,
            PageFlag::Swapbacked,
            PageFlag::Unevictable,
            PageFlag::Mlocked,
            PageFlag::Uncached,
            PageFlag::Hwpoison,
            PageFlag::Young,
            PageFlag::Idle,
        ];
        assert_eq!(flags.len() as u32, PAGE_FLAG_COUNT);
        let mut seen = 0u32;
        for f in flags {
            let bit = 1u32 << (f as u32);
            assert_eq!(seen & bit, 0, "duplicate bit for {f:?}");
            seen |= bit;
        }
    }

    #[test]
    fn set_test_clear() {
        let mut p = PageMeta::default();
        assert!(!p.test(PageFlag::Dirty));
        p.set(PageFlag::Dirty);
        p.set(PageFlag::Lru);
        assert!(p.test(PageFlag::Dirty));
        assert!(p.test(PageFlag::Lru));
        p.clear(PageFlag::Dirty);
        assert!(!p.test(PageFlag::Dirty));
        assert!(p.test_and_clear(PageFlag::Lru));
        assert!(!p.test_and_clear(PageFlag::Lru));
    }

    #[test]
    fn table_footprint_is_linear() {
        // 1 GiB of frames → 16 MiB of struct page: the linear overhead.
        let t = PageMetaTable::new((1 << 30) / 4096);
        assert_eq!(t.metadata_bytes(), (1 << 30) / 4096 * 64);
        assert_eq!(t.metadata_bytes() * 100 / (1 << 30), 1, "~1.5% of memory");
    }

    #[test]
    fn reset_clears_state() {
        let mut t = PageMetaTable::new(4);
        t.get_mut(FrameNo(2)).set(PageFlag::Active);
        t.get_mut(FrameNo(2)).rmap.push((Pid(1), VirtAddr(0x1000)));
        t.get_mut(FrameNo(2)).mapcount = 1;
        t.reset(FrameNo(2));
        assert!(!t.get(FrameNo(2)).test(PageFlag::Active));
        assert!(t.get(FrameNo(2)).rmap.is_empty());
        assert_eq!(t.get(FrameNo(2)).mapcount, 0);
    }
}
