//! The common kernel interface both memory designs implement.
//!
//! Workload drivers in `o1-workloads` are written against [`MemSys`],
//! so every experiment runs identically against the baseline kernel
//! and the file-only-memory kernel and differs only in what the two
//! designs charge.

use o1_hw::{CpuId, Machine, MachineConfig, PerfSnapshot, VirtAddr, PAGE_SIZE};

use crate::runs::AccessRun;
use crate::types::{Pid, VmError};

/// Validate the machine half of a kernel builder. CPU counts outside
/// `1..=o1_hw::MAX_CPUS` are rejected here — at build time, with an
/// error — rather than panicking deep inside the hardware layer.
pub fn validate_machine_config(config: &MachineConfig) -> Result<(), VmError> {
    if config.cpus == 0 || config.cpus > o1_hw::MAX_CPUS {
        return Err(VmError::InvalidConfig);
    }
    Ok(())
}

/// Generates the [`MachineConfig`]-backed setters every kernel
/// builder shares — `cost`, `cpus`, `obs`, `tlb` — so the baseline
/// and file-only builders cannot drift apart. The builder type must
/// have `machine: MachineConfig` and `tlb: Option<(usize, usize)>`
/// fields; kernel-specific policy setters stay hand-written.
#[macro_export]
macro_rules! machine_config_builder {
    ($builder:ty) => {
        impl $builder {
            /// Per-operation cost table.
            pub fn cost(mut self, cost: ::o1_hw::CostModel) -> Self {
                self.machine.cost = cost;
                self
            }

            /// Number of simulated CPUs (`1..=o1_hw::MAX_CPUS`). Each
            /// CPU owns private translation caches; invalidations
            /// broadcast to the CPUs holding the target ASID and
            /// charge per-responder IPI costs.
            pub fn cpus(mut self, cpus: u32) -> Self {
                self.machine.cpus = cpus;
                self
            }

            /// Cost-attribution ledger mode (see [`o1_hw::ObsMode`]).
            pub fn obs(mut self, mode: ::o1_hw::ObsMode) -> Self {
                self.machine.obs = mode;
                self
            }

            /// Page-TLB geometry (`sets` × `assoc` entries, per CPU).
            pub fn tlb(mut self, sets: usize, assoc: usize) -> Self {
                self.tlb = Some((sets, assoc));
                self
            }
        }
    };
}

/// A memory-management system under test.
pub trait MemSys {
    /// Human-readable name for experiment output.
    fn sys_name(&self) -> &'static str;

    /// The simulated machine (clock + counters).
    fn machine(&self) -> &Machine;

    /// Mutable machine access.
    fn machine_mut(&mut self) -> &mut Machine;

    /// Snapshot the simulated clock and perf counters. Drivers diff
    /// two snapshots ([`PerfSnapshot::since`]) instead of reaching
    /// into [`Machine`] internals.
    fn stats(&self) -> PerfSnapshot {
        PerfSnapshot::of(self.machine())
    }

    /// Label the current execution phase in the cost-attribution
    /// ledger. Free when tracing is off; with a trace every
    /// subsequent charge is attributed to `label` until the next
    /// call. Re-entering the current phase is a no-op.
    fn phase(&mut self, label: &'static str) {
        self.machine_mut().set_phase(label);
    }

    /// The CPU subsequent operations run on.
    fn current_cpu(&self) -> CpuId {
        CpuId::BOOT
    }

    /// How many simulated CPUs this system was booted with. Drivers
    /// use it to spread work round-robin; `1` means every
    /// [`set_cpu`](Self::set_cpu) is a no-op.
    fn cpu_count(&self) -> u32 {
        1
    }

    /// Migrate subsequent operations to `cpu`. Free on the simulated
    /// clock — it models the scheduler having placed the work there,
    /// not a context switch. Kernels route this to the MMU, whose
    /// translation caches are per-CPU.
    fn set_cpu(&mut self, cpu: CpuId) {
        let _ = cpu;
    }

    /// Pin the following operations to `cpu`: the returned handle
    /// derefs to the kernel and restores the previously current CPU
    /// when dropped.
    fn on_cpu(&mut self, cpu: CpuId) -> OnCpu<'_, Self>
    where
        Self: Sized,
    {
        OnCpu::new(self, cpu)
    }

    /// Create an empty process.
    ///
    /// # Errors
    /// [`VmError::ProcessLimit`] when the process table is exhausted
    /// (ASIDs are 16-bit, so at most 65535 *live* processes).
    fn create_process(&mut self) -> Result<Pid, VmError>;

    /// Tear down a process and all its memory.
    fn destroy_process(&mut self, pid: Pid) -> Result<(), VmError>;

    /// Allocate `bytes` of zeroed, writable memory for `pid` —
    /// anonymous mmap on the baseline, a volatile file on file-only
    /// memory. `populate` requests eager mapping.
    fn alloc(&mut self, pid: Pid, bytes: u64, populate: bool) -> Result<VirtAddr, VmError>;

    /// Release memory previously obtained from [`alloc`](Self::alloc).
    fn release(&mut self, pid: Pid, va: VirtAddr, bytes: u64) -> Result<(), VmError>;

    /// 8-byte load at `va`.
    fn load(&mut self, pid: Pid, va: VirtAddr) -> Result<u64, VmError>;

    /// 8-byte store at `va`.
    fn store(&mut self, pid: Pid, va: VirtAddr, value: u64) -> Result<(), VmError>;

    /// Drive `len` accesses at `va, va+stride, …` (byte stride): at
    /// access `k`, a [`store`](Self::store) of `first_value + k` when
    /// `write`, else a [`load`](Self::load). This per-access loop is
    /// the *semantics of record*; kernels override it with the
    /// run-compressed fast-forward engine, which is proven to produce
    /// identical charges, counters and data.
    fn access_span(
        &mut self,
        pid: Pid,
        va: VirtAddr,
        stride: i64,
        len: u64,
        write: bool,
        first_value: u64,
    ) -> Result<(), VmError> {
        for k in 0..len {
            let a = VirtAddr(va.0.wrapping_add_signed(stride.wrapping_mul(k as i64)));
            if write {
                self.store(pid, a, first_value + k)?;
            } else {
                self.load(pid, a)?;
            }
        }
        Ok(())
    }

    /// Drive a run-length-encoded access sequence against the region
    /// based at `base`: each [`AccessRun`] expands to `len` accesses
    /// at `base + page·PAGE_SIZE`, stores writing a running sequence
    /// value starting at `first_value`. Returns the value counter
    /// after the last access, so chunked callers can stream runs
    /// without materialising the sequence. Routed through
    /// [`access_span`](Self::access_span), which kernels override
    /// with the fast-forward engine.
    fn access_runs(
        &mut self,
        pid: Pid,
        base: VirtAddr,
        runs: &[AccessRun],
        write: bool,
        first_value: u64,
    ) -> Result<u64, VmError> {
        let mut value = first_value;
        for r in runs {
            let va = base + r.start_page * PAGE_SIZE;
            self.access_span(pid, va, r.stride.wrapping_mul(PAGE_SIZE as i64), r.len, write, value)?;
            value += r.len;
        }
        Ok(value)
    }

    /// Drive a whole access sequence in one call: for each address,
    /// a [`store`](Self::store) of its sequence index when `write`,
    /// else a [`load`](Self::load). Semantically identical to the
    /// per-element loop (same order, same values, same charges). The
    /// addresses are greedily run-length encoded on the fly and fed
    /// to [`access_span`](Self::access_span), so every implementor —
    /// trait default and kernel overrides alike — shares one loop and
    /// kernels get their fast-forward engine for free.
    fn access_batch(&mut self, pid: Pid, addrs: &[VirtAddr], write: bool) -> Result<(), VmError> {
        let mut i = 0usize;
        while i < addrs.len() {
            let start = addrs[i];
            let mut stride = 0i64;
            let mut len = 1u64;
            if i + 1 < addrs.len() {
                stride = addrs[i + 1].0.wrapping_sub(start.0) as i64;
                len = 2;
                while i + (len as usize) < addrs.len()
                    && addrs[i + len as usize]
                        .0
                        .wrapping_sub(addrs[i + len as usize - 1].0) as i64
                        == stride
                {
                    len += 1;
                }
            }
            self.access_span(pid, start, stride, len, write, i as u64)?;
            i += len as usize;
        }
        Ok(())
    }
}

/// Scoped CPU pin over a [`MemSys`], created by [`MemSys::on_cpu`]:
/// derefs to the wrapped kernel and restores the previously current
/// CPU on drop, so callers cannot forget to switch back.
///
/// # Examples
/// ```
/// use o1_vm::{BaselineKernel, CpuId, MemSys};
///
/// let mut k = BaselineKernel::builder().cpus(2).build();
/// {
///     let mut k1 = k.on_cpu(CpuId(1));
///     let pid = k1.create_process().unwrap();
///     k1.destroy_process(pid).unwrap();
/// }
/// assert_eq!(k.current_cpu(), CpuId(0));
/// ```
pub struct OnCpu<'a, M: MemSys> {
    sys: &'a mut M,
    prev: CpuId,
}

impl<'a, M: MemSys> OnCpu<'a, M> {
    fn new(sys: &'a mut M, cpu: CpuId) -> OnCpu<'a, M> {
        let prev = sys.current_cpu();
        sys.set_cpu(cpu);
        OnCpu { sys, prev }
    }
}

impl<M: MemSys> core::ops::Deref for OnCpu<'_, M> {
    type Target = M;

    fn deref(&self) -> &M {
        self.sys
    }
}

impl<M: MemSys> core::ops::DerefMut for OnCpu<'_, M> {
    fn deref_mut(&mut self) -> &mut M {
        self.sys
    }
}

impl<M: MemSys> Drop for OnCpu<'_, M> {
    fn drop(&mut self) {
        self.sys.set_cpu(self.prev);
    }
}

/// Thin type-erasure facade over [`MemSys`].
///
/// The workload drivers are generic (`impl MemSys`), so every kernel ×
/// driver pair monomorphizes on the figure hot path. Tools that
/// genuinely need erasure — heterogeneous kernel lists, trait-object
/// storage — wrap a `&mut dyn MemSys` in `Erased` and pass *that* to
/// the generic drivers. Every method delegates through the vtable, so
/// kernel overrides (the fast-forward engines) are reached exactly as
/// in the monomorphic path; the equivalence test in
/// `tests/drivers_equiv.rs` proves the two paths produce identical
/// ledgers.
pub struct Erased<'a>(pub &'a mut dyn MemSys);

impl MemSys for Erased<'_> {
    fn sys_name(&self) -> &'static str {
        self.0.sys_name()
    }

    fn machine(&self) -> &Machine {
        self.0.machine()
    }

    fn machine_mut(&mut self) -> &mut Machine {
        self.0.machine_mut()
    }

    fn stats(&self) -> PerfSnapshot {
        self.0.stats()
    }

    fn phase(&mut self, label: &'static str) {
        self.0.phase(label);
    }

    fn current_cpu(&self) -> CpuId {
        self.0.current_cpu()
    }

    fn cpu_count(&self) -> u32 {
        self.0.cpu_count()
    }

    fn set_cpu(&mut self, cpu: CpuId) {
        self.0.set_cpu(cpu);
    }

    fn create_process(&mut self) -> Result<Pid, VmError> {
        self.0.create_process()
    }

    fn destroy_process(&mut self, pid: Pid) -> Result<(), VmError> {
        self.0.destroy_process(pid)
    }

    fn alloc(&mut self, pid: Pid, bytes: u64, populate: bool) -> Result<VirtAddr, VmError> {
        self.0.alloc(pid, bytes, populate)
    }

    fn release(&mut self, pid: Pid, va: VirtAddr, bytes: u64) -> Result<(), VmError> {
        self.0.release(pid, va, bytes)
    }

    fn load(&mut self, pid: Pid, va: VirtAddr) -> Result<u64, VmError> {
        self.0.load(pid, va)
    }

    fn store(&mut self, pid: Pid, va: VirtAddr, value: u64) -> Result<(), VmError> {
        self.0.store(pid, va, value)
    }

    fn access_span(
        &mut self,
        pid: Pid,
        va: VirtAddr,
        stride: i64,
        len: u64,
        write: bool,
        first_value: u64,
    ) -> Result<(), VmError> {
        self.0.access_span(pid, va, stride, len, write, first_value)
    }

    fn access_runs(
        &mut self,
        pid: Pid,
        base: VirtAddr,
        runs: &[AccessRun],
        write: bool,
        first_value: u64,
    ) -> Result<u64, VmError> {
        self.0.access_runs(pid, base, runs, write, first_value)
    }

    fn access_batch(&mut self, pid: Pid, addrs: &[VirtAddr], write: bool) -> Result<(), VmError> {
        self.0.access_batch(pid, addrs, write)
    }
}

impl MemSys for crate::kernel::BaselineKernel {
    fn sys_name(&self) -> &'static str {
        "baseline"
    }

    fn machine(&self) -> &Machine {
        self.machine()
    }

    fn machine_mut(&mut self) -> &mut Machine {
        self.machine_mut()
    }

    fn current_cpu(&self) -> CpuId {
        self.current_cpu()
    }

    fn cpu_count(&self) -> u32 {
        self.cpu_count()
    }

    fn set_cpu(&mut self, cpu: CpuId) {
        self.set_cpu(cpu);
    }

    fn create_process(&mut self) -> Result<Pid, VmError> {
        self.create_process()
    }

    fn destroy_process(&mut self, pid: Pid) -> Result<(), VmError> {
        self.destroy_process(pid)
    }

    fn alloc(&mut self, pid: Pid, bytes: u64, populate: bool) -> Result<VirtAddr, VmError> {
        let flags = if populate {
            crate::types::MapFlags::private_populate()
        } else {
            crate::types::MapFlags::private()
        };
        self.mmap(
            pid,
            bytes,
            crate::types::Prot::ReadWrite,
            crate::types::Backing::Anon,
            flags,
        )
    }

    fn release(&mut self, pid: Pid, va: VirtAddr, bytes: u64) -> Result<(), VmError> {
        self.munmap(pid, va, bytes)
    }

    fn load(&mut self, pid: Pid, va: VirtAddr) -> Result<u64, VmError> {
        self.load(pid, va)
    }

    fn store(&mut self, pid: Pid, va: VirtAddr, value: u64) -> Result<(), VmError> {
        self.store(pid, va, value)
    }

    fn access_span(
        &mut self,
        pid: Pid,
        va: VirtAddr,
        stride: i64,
        len: u64,
        write: bool,
        first_value: u64,
    ) -> Result<(), VmError> {
        self.access_span(pid, va, stride, len, write, first_value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::BaselineKernel;
    use o1_hw::PAGE_SIZE;

    fn run_generic(sys: &mut impl MemSys) {
        let pid = sys.create_process().unwrap();
        let va = sys.alloc(pid, 8 * PAGE_SIZE, false).unwrap();
        sys.store(pid, va, 1234).unwrap();
        assert_eq!(sys.load(pid, va).unwrap(), 1234);
        sys.release(pid, va, 8 * PAGE_SIZE).unwrap();
        assert_eq!(sys.load(pid, va), Err(VmError::BadAddress));
        sys.destroy_process(pid).unwrap();
    }

    #[test]
    fn baseline_implements_memsys() {
        let mut k = BaselineKernel::builder().dram(16 << 20).build();
        assert_eq!(k.sys_name(), "baseline");
        run_generic(&mut k);
        assert!(k.machine().now().0 > 0);
    }

    #[test]
    fn invalid_cpu_counts_are_rejected_at_build() {
        assert_eq!(
            BaselineKernel::builder().cpus(0).try_build().err(),
            Some(VmError::InvalidConfig)
        );
        assert_eq!(
            BaselineKernel::builder()
                .cpus(o1_hw::MAX_CPUS + 1)
                .try_build()
                .err(),
            Some(VmError::InvalidConfig)
        );
        assert!(BaselineKernel::builder().cpus(o1_hw::MAX_CPUS).try_build().is_ok());
    }

    #[test]
    fn on_cpu_pins_and_restores() {
        use crate::types::CpuId;

        let mut k = BaselineKernel::builder().dram(16 << 20).cpus(4).build();
        assert_eq!(k.current_cpu(), CpuId::BOOT);
        {
            let mut pinned = k.on_cpu(CpuId(3));
            assert_eq!(pinned.current_cpu(), CpuId(3));
            run_generic(&mut *pinned);
        }
        assert_eq!(k.current_cpu(), CpuId::BOOT, "drop restores the CPU");
        // Erased facade routes CPU placement through the vtable.
        let mut erased = Erased(&mut k);
        erased.set_cpu(CpuId(2));
        assert_eq!(erased.current_cpu(), CpuId(2));
        k.set_cpu(CpuId::BOOT);
    }
}
