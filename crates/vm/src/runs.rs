//! Shared pieces of the run-compressed execution engine.
//!
//! Both kernels fast-forward a translation-uniform access run the same
//! way: the MMU proves the run uniform and charges the translation
//! half ([`o1_hw::Mmu::translate_run`]); the helper here charges the
//! memory half and performs the data stores. Splitting it this way
//! keeps the cost knowledge in one place per layer — neither half
//! duplicates the other's cost table.

use o1_hw::{CostKind, Machine, MemTier, PhysAddr};

/// One run-length-encoded chunk of an access sequence: `len` accesses
/// at page indexes `start_page + k·stride` for `k in 0..len`, relative
/// to some region base. `stride` is in pages and may be zero (repeated
/// touches of one page) or negative.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AccessRun {
    /// Page index of the first access.
    pub start_page: u64,
    /// Pages between consecutive accesses (signed).
    pub stride: i64,
    /// Number of accesses; always ≥ 1.
    pub len: u64,
}

impl AccessRun {
    /// Page index of access `k` (must be `< len`).
    #[inline]
    pub fn page(&self, k: u64) -> u64 {
        debug_assert!(k < self.len);
        (self.start_page as i64 + self.stride.wrapping_mul(k as i64)) as u64
    }
}

/// Charge the memory half of `span` fast-forwarded accesses starting
/// at physical address `pa` with byte stride `stride`: bump the
/// load/store counter by `span`, charge `span ×` the tier's per-access
/// cost (the run is tier-uniform by the MMU's proof), and for writes
/// store the same values the interpreter would (`first_value + k` at
/// access `k`). Loads have no side effects, so their data reads are
/// skipped entirely — that is the O(1) half of the fast-forward.
pub fn bulk_memory(
    m: &mut Machine,
    pa: PhysAddr,
    stride: i64,
    span: u64,
    write: bool,
    first_value: u64,
) {
    let tier = m.phys.tier(pa.frame());
    if write {
        m.perf.stores += span;
        let kind = match tier {
            MemTier::Dram => CostKind::MemWriteDram,
            MemTier::Nvm => CostKind::MemWriteNvm,
        };
        m.charge_opn(kind, span);
        for k in 0..span {
            let p = PhysAddr(pa.0.wrapping_add_signed(stride.wrapping_mul(k as i64)));
            m.phys.write_u64(p, first_value + k);
        }
    } else {
        m.perf.loads += span;
        let kind = match tier {
            MemTier::Dram => CostKind::MemReadDram,
            MemTier::Nvm => CostKind::MemReadNvm,
        };
        m.charge_opn(kind, span);
    }
}
