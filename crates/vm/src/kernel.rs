//! The baseline kernel: Linux-like virtual memory management.
//!
//! This is the *status quo* every figure in the paper compares against:
//!
//! * `mmap` with demand paging or `MAP_POPULATE` — the populate path
//!   performs one buddy allocation, one zero, one PTE write and one
//!   `struct page` update **per page** (Figure 1a);
//! * demand faults pay the trap + handler cost per page (Figure 1b);
//! * per-frame [`PageMeta`](crate::page_meta::PageMeta) records with
//!   the 25 Linux page flags;
//! * clock / 2Q reclaim with a swap device, triggered below a free-
//!   memory watermark (A-RECLAIM);
//! * copy-on-write (fork and `MAP_PRIVATE` file mappings) and page
//!   pinning — the page-granular features the paper concedes are hard
//!   to keep under file-only memory.

use o1_hw::{CostKind, OpKind};

use o1_hw::{
    span_within, Access, Asid, AsidAllocator, CpuId, FastMap, FrameNo, Machine, MachineConfig,
    MemTier, Mmu, PageSize, PageTables, PhysAddr, PtNodeId, PteFlags, RangeTable, TranslateError,
    VirtAddr, HUGE_2M, PAGE_SIZE, PT_LEVELS,
};
use o1_memfs::{FileId, Tmpfs};
use o1_palloc::{BuddyAllocator, FrameSource, PhysExtent};

/// Mechanism label under which this kernel's operation latencies are
/// recorded in the `o1-obs` ledger.
const MECH: &str = "baseline";

use crate::page_meta::{PageFlag, PageMetaTable};
use crate::proc_table::ProcTable;
use crate::reclaim::{LruLists, ReclaimPolicy, ScanDecision, SwapDevice, SwapSlot};
use crate::types::{Backing, MapFlags, Pid, Prot, VmError};
use crate::vma::{Vma, VmaMap};

/// Lowest address handed out by mmap.
pub const MMAP_BASE: u64 = 0x1000_0000;

/// Configuration of the baseline kernel.
#[derive(Clone, Debug)]
pub struct BaselineConfig {
    /// DRAM size in bytes.
    pub dram_bytes: u64,
    /// Reclaim policy.
    pub reclaim: ReclaimPolicy,
    /// Reclaim kicks in when free frames drop below this.
    pub low_watermark_frames: u64,
    /// Whether anonymous pages may be swapped out under pressure.
    pub swap_enabled: bool,
    /// Transparent-huge-page policy for anonymous memory.
    pub thp: ThpMode,
    /// Pages populated per fault (1 = plain demand paging; Linux's
    /// fault-around uses 16 for file mappings).
    pub fault_around: u32,
}

/// Transparent-huge-page policy (§1/§3 of the paper: "with ample
/// memory it may be more efficient to allocate a large page (e.g.,
/// 2MB) when only hundreds of kilobytes are needed... No current
/// system would choose this, though, because of the wasted space").
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ThpMode {
    /// 4 KiB pages only.
    Never,
    /// Use a 2 MiB mapping when the VMA fully covers an aligned
    /// 2 MiB region (Linux THP-style).
    Aligned2M,
    /// The paper's thought experiment: round every anonymous mapping
    /// up to 2 MiB and always map huge, trading space for time. The
    /// waste is tracked in [`BaselineKernel::space_overhead_bytes`].
    GreedyHuge,
}

impl Default for BaselineConfig {
    fn default() -> Self {
        BaselineConfig {
            dram_bytes: 256 << 20,
            reclaim: ReclaimPolicy::Clock,
            low_watermark_frames: 64,
            swap_enabled: true,
            thp: ThpMode::Never,
            fault_around: 1,
        }
    }
}

/// Builder for a [`BaselineKernel`]: kernel policy plus the shared
/// [`MachineConfig`] (cost model, CPU count, observability mode) and
/// TLB geometry, in one place. Obtained from
/// [`BaselineKernel::builder`].
///
/// # Examples
/// ```
/// use o1_vm::{BaselineKernel, ThpMode};
///
/// let k = BaselineKernel::builder()
///     .dram(64 << 20)
///     .thp(ThpMode::Aligned2M)
///     .cpus(8)
///     .build();
/// assert!(k.free_frames() > 0);
/// ```
#[derive(Clone, Debug, Default)]
pub struct BaselineBuilder {
    config: BaselineConfig,
    machine: MachineConfig,
    tlb: Option<(usize, usize)>,
}

impl BaselineBuilder {
    /// DRAM size in bytes.
    pub fn dram(mut self, bytes: u64) -> Self {
        self.config.dram_bytes = bytes;
        self
    }

    /// Reclaim policy.
    pub fn reclaim(mut self, policy: ReclaimPolicy) -> Self {
        self.config.reclaim = policy;
        self
    }

    /// Free-frame watermark below which reclaim kicks in.
    pub fn low_watermark_frames(mut self, frames: u64) -> Self {
        self.config.low_watermark_frames = frames;
        self
    }

    /// Whether anonymous pages may be swapped out under pressure.
    pub fn swap(mut self, enabled: bool) -> Self {
        self.config.swap_enabled = enabled;
        self
    }

    /// Transparent-huge-page policy.
    pub fn thp(mut self, mode: ThpMode) -> Self {
        self.config.thp = mode;
        self
    }

    /// Pages populated per fault.
    pub fn fault_around(mut self, pages: u32) -> Self {
        self.config.fault_around = pages;
        self
    }

    /// Replace the whole kernel-policy config at once.
    pub fn config(mut self, config: BaselineConfig) -> Self {
        self.config = config;
        self
    }

    /// Boot the kernel.
    ///
    /// # Panics
    /// Panics on an invalid machine configuration; use
    /// [`try_build`](Self::try_build) to handle it as an error.
    pub fn build(self) -> BaselineKernel {
        self.try_build().expect("invalid machine configuration")
    }

    /// Boot the kernel, validating the machine configuration.
    ///
    /// # Errors
    /// [`VmError::InvalidConfig`] when `cpus` is zero or exceeds
    /// [`o1_hw::MAX_CPUS`].
    pub fn try_build(self) -> Result<BaselineKernel, VmError> {
        crate::api::validate_machine_config(&self.machine)?;
        let config = MachineConfig {
            dram_bytes: self.config.dram_bytes,
            nvm_bytes: 0,
            ..self.machine
        };
        let mmu = Mmu::smp(false, config.cpus, self.tlb, None);
        let machine = Machine::from_config(config);
        Ok(BaselineKernel::boot(self.config, machine, mmu))
    }
}

// The `cost` / `cpus` / `obs` / `tlb` setters, shared with the
// file-only kernel's builder.
crate::machine_config_builder!(BaselineBuilder);

#[derive(Debug)]
struct Proc {
    asid: Asid,
    root: PtNodeId,
    vmas: VmaMap,
    /// Pages evicted to swap: virtual page → slot.
    /// Keyed by virtual page number — trusted fixed-width ids probed
    /// on every fault in the region, so the fast hasher is safe.
    swapped: FastMap<u64, SwapSlot>,
}

/// The baseline Linux-like kernel.
#[derive(Debug)]
pub struct BaselineKernel {
    machine: Machine,
    pt: PageTables,
    mmu: Mmu,
    alloc: BuddyAllocator,
    /// The tmpfs instance files live in.
    pub tmpfs: Tmpfs,
    procs: ProcTable<Proc>,
    meta: PageMetaTable,
    swap: SwapDevice,
    lru: LruLists,
    low_watermark: u64,
    swap_enabled: bool,
    thp: ThpMode,
    fault_around: u32,
    next_pid: u32,
    /// ASID lifecycle: sequential-first grants, PCID-style recycling
    /// with flush-on-reuse once the 16-bit space rolls over.
    asids: AsidAllocator,
    /// Huge buddy blocks that were split in place: block start frame →
    /// live base pages. The order-9 block returns to the buddy only
    /// when the count reaches zero.
    /// Keyed by the head frame number of a huge block — a trusted
    /// fixed-width hardware id, probed on every huge map/unmap.
    huge_parts: FastMap<u64, u32>,
    /// Bytes wasted by GreedyHuge rounding (space-for-time ledger).
    space_overhead: u64,
    /// Baseline hardware has no range translations.
    no_ranges: RangeTable,
}

impl BaselineKernel {
    /// Boot a kernel with the given configuration.
    pub fn new(config: BaselineConfig) -> BaselineKernel {
        BaselineKernel::builder().config(config).build()
    }

    /// Start configuring a kernel: policy, machine geometry, cost
    /// model and TLB shape in one fluent chain.
    pub fn builder() -> BaselineBuilder {
        BaselineBuilder::default()
    }

    fn boot(config: BaselineConfig, machine: Machine, mmu: Mmu) -> BaselineKernel {
        let frames = machine.phys.total_frames();
        BaselineKernel {
            machine,
            pt: PageTables::new(),
            mmu,
            alloc: BuddyAllocator::new(PhysExtent::new(FrameNo(0), frames)),
            tmpfs: Tmpfs::new(),
            procs: ProcTable::new(),
            meta: PageMetaTable::new(frames),
            swap: SwapDevice::new(),
            lru: LruLists::new(config.reclaim),
            low_watermark: config.low_watermark_frames,
            swap_enabled: config.swap_enabled,
            thp: config.thp,
            fault_around: config.fault_around.max(1),
            next_pid: 1,
            asids: AsidAllocator::new(),
            huge_parts: FastMap::default(),
            space_overhead: 0,
            no_ranges: RangeTable::new(),
        }
    }

    /// The simulated machine (clock, counters, cost model).
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// Mutable machine access (experiments tweak costs, read clock).
    pub fn machine_mut(&mut self) -> &mut Machine {
        &mut self.machine
    }

    /// Free physical frames.
    pub fn free_frames(&self) -> u64 {
        self.alloc.free_frames()
    }

    /// Configure the hardware translation depth (§2: 5-level paging,
    /// virtualized nesting).
    pub fn set_walk_mode(&mut self, mode: o1_hw::WalkMode) {
        self.mmu.walk_mode = mode;
    }

    /// CPU whose private translation caches subsequent operations use.
    pub fn current_cpu(&self) -> CpuId {
        self.mmu.current_cpu()
    }

    /// Run subsequent operations on `cpu`.
    ///
    /// # Panics
    /// Panics if `cpu` is out of range for this machine.
    pub fn set_cpu(&mut self, cpu: CpuId) {
        self.mmu.set_cpu(cpu);
    }

    /// Number of simulated CPUs this kernel was booted with.
    pub fn cpu_count(&self) -> u32 {
        self.mmu.cpu_count()
    }

    /// Bytes of memory wasted by the GreedyHuge space-for-time trade
    /// (mapping rounding), cumulatively.
    pub fn space_overhead_bytes(&self) -> u64 {
        self.space_overhead
    }

    /// Bytes of page-table metadata currently allocated.
    pub fn pt_metadata_bytes(&self) -> u64 {
        self.pt.metadata_bytes()
    }

    /// Bytes of `struct page` metadata (fixed at boot — the linear
    /// cost the paper's T-META experiment charts).
    pub fn page_meta_bytes(&self) -> u64 {
        self.meta.metadata_bytes()
    }

    /// Number of VMAs in a process (metadata diagnostics).
    pub fn vma_count(&self, pid: Pid) -> Result<usize, VmError> {
        Ok(self.proc(pid)?.vmas.len())
    }

    /// Sample the gauge timeline if the machine's sampler is due.
    ///
    /// Mirrors `FomKernel::poll_timeline`: rides the syscall/access
    /// funnel so gauges are read at quiescent points, and is
    /// idempotent at a given clock value (the first due sample re-arms
    /// the sampler past `now`).
    fn poll_timeline(&mut self) {
        if !self.machine.timeline_due() {
            return;
        }
        let mut g: Vec<(&'static str, u64)> = vec![
            ("kernel.procs_live", self.procs.len() as u64),
            ("kernel.asids_live", u64::from(self.asids.live())),
            ("kernel.pt_meta_bytes", self.pt.metadata_bytes()),
            ("kernel.free_frames", self.alloc.free_frames()),
            ("kernel.swap_used_slots", self.swap.used_slots() as u64),
            ("kernel.lru_tracked", self.lru.len() as u64),
        ];
        self.mmu.gauges(&mut g);
        self.machine.timeline_sample(&g);
    }

    fn proc(&self, pid: Pid) -> Result<&Proc, VmError> {
        self.procs.get(pid).ok_or(VmError::NoProcess)
    }

    fn proc_mut(&mut self, pid: Pid) -> Result<&mut Proc, VmError> {
        self.procs.get_mut(pid).ok_or(VmError::NoProcess)
    }

    // ---- process lifecycle ------------------------------------------------

    /// Allocate the next pid and an ASID for it. Pids are monotonic;
    /// ASIDs come from the recycling allocator, and a recycled
    /// grant's stale translations are flushed here (the PCID
    /// rollover cost).
    fn alloc_pid(&mut self) -> Result<(Pid, Asid), VmError> {
        let grant = self.asids.alloc().ok_or(VmError::ProcessLimit)?;
        if grant.needs_flush {
            self.mmu.flush_asid(&mut self.machine, grant.asid);
        }
        let pid = Pid(self.next_pid);
        self.next_pid += 1;
        Ok((pid, grant.asid))
    }

    /// Create an empty process.
    ///
    /// # Errors
    /// [`VmError::ProcessLimit`] while all 65535 16-bit ASIDs are
    /// held by live processes.
    pub fn create_process(&mut self) -> Result<Pid, VmError> {
        let t0 = self.machine.op_start();
        self.machine.charge_syscall();
        let (pid, asid) = self.alloc_pid()?;
        let root = self.pt.create_root(&mut self.machine);
        self.procs.insert(
            pid,
            Proc {
                asid,
                root,
                vmas: VmaMap::new(),
                swapped: FastMap::default(),
            },
        );
        self.machine.op_end(t0, OpKind::Launch, MECH);
        self.poll_timeline();
        Ok(pid)
    }

    /// Tear down a process: unmap everything (page by page — the
    /// baseline's linear exit cost), free its page tables, drop swap.
    pub fn destroy_process(&mut self, pid: Pid) -> Result<(), VmError> {
        let t0 = self.machine.op_start();
        self.machine.charge_syscall();
        let regions: Vec<(VirtAddr, u64)> = self
            .proc(pid)?
            .vmas
            .iter()
            .map(|v| (v.start, v.len()))
            .collect();
        for (start, len) in regions {
            self.unmap_region(pid, start, len)?;
        }
        let proc = self.procs.remove(pid).expect("checked above");
        for (_, slot) in proc.swapped {
            self.swap.discard(slot);
        }
        self.mmu.flush_asid(&mut self.machine, proc.asid);
        self.asids.free(proc.asid);
        self.pt.release(&mut self.machine, proc.root);
        self.machine.op_end(t0, OpKind::Teardown, MECH);
        self.poll_timeline();
        Ok(())
    }

    /// Fork: duplicate the address space with copy-on-write. Linear in
    /// the number of *mapped* pages, as on real hardware.
    pub fn fork(&mut self, parent: Pid) -> Result<Pid, VmError> {
        self.machine.charge_syscall();
        let (p_root, p_asid, vmas, swapped): (PtNodeId, Asid, Vec<Vma>, Vec<(u64, SwapSlot)>) = {
            let p = self.proc(parent)?;
            (
                p.root,
                p.asid,
                p.vmas.iter().copied().collect(),
                p.swapped.iter().map(|(&k, &v)| (k, v)).collect(),
            )
        };
        let (child, child_asid) = self.alloc_pid()?;
        let c_root = self.pt.create_root(&mut self.machine);
        let mut c_vmas = VmaMap::new();
        for v in &vmas {
            self.machine.charge_kind(CostKind::VmaCreate);
            c_vmas.insert(*v);
        }
        let mut c_swapped = FastMap::default();
        // Swap slots cannot be shared in this model; fault them back
        // in lazily in the parent is complex — simplest correct model:
        // swapped pages are brought in on fork (charged).
        for (vpage, slot) in swapped {
            let va = VirtAddr(vpage * PAGE_SIZE);
            self.swap_in_page(parent, va, slot)?;
            self.proc_mut(parent)?.swapped.remove(&vpage);
            let _ = &mut c_swapped;
        }
        // Huge mappings are split before COW-sharing (as Linux did for
        // years): the paper's "2MB pages are expensive... Linux instead
        // fragments them into 4KB pages".
        for v in &vmas {
            let mut va = v.start;
            while va < v.end {
                match self.pt.lookup(p_root, va) {
                    Some(t) if t.size != PageSize::Base => {
                        let leaf = va.align_down(t.size.bytes());
                        self.split_huge_leaf(parent, p_root, p_asid, leaf);
                        va = leaf + t.size.bytes();
                    }
                    Some(_) | None => va += PAGE_SIZE,
                }
            }
        }
        // Share every mapped page read-only + COW.
        for v in &vmas {
            let mut va = v.start;
            while va < v.end {
                if let Some(t) = self.pt.lookup(p_root, va) {
                    let frame = t.pa.frame();
                    // Downgrade parent to COW (skip shared mappings).
                    if !v.shared {
                        self.pt.unmap(&mut self.machine, p_root, va);
                        let flags = pte_for(v.prot)
                            .difference(PteFlags::WRITE)
                            .union(cow_bit(v.prot));
                        self.pt
                            .map(&mut self.machine, p_root, va, frame, PageSize::Base, flags)
                            .expect("remapping just-unmapped page");
                        self.pt
                            .map(&mut self.machine, c_root, va, frame, PageSize::Base, flags)
                            .expect("child slot empty");
                    } else {
                        self.pt
                            .map(
                                &mut self.machine,
                                c_root,
                                va,
                                frame,
                                PageSize::Base,
                                pte_for(v.prot),
                            )
                            .expect("child slot empty");
                    }
                    let meta = self.meta.get_mut(frame);
                    meta.mapcount += 1;
                    meta.rmap.push((child, va));
                    self.machine.charge_kind(CostKind::PageMetaUpdate);
                    self.machine.perf.page_meta_updates += 1;
                }
                va += PAGE_SIZE;
            }
        }
        self.mmu.flush_asid(&mut self.machine, p_asid);
        self.mmu.charge_shootdown(&mut self.machine, p_asid);
        self.procs.insert(
            child,
            Proc {
                asid: child_asid,
                root: c_root,
                vmas: c_vmas,
                swapped: c_swapped,
            },
        );
        self.poll_timeline();
        Ok(child)
    }

    /// Launch a process with code, heap and stack segments — the
    /// baseline's per-page cost at launch is what file-only memory's
    /// "segments as files" removes.
    pub fn launch_process(
        &mut self,
        code_bytes: u64,
        heap_bytes: u64,
        stack_bytes: u64,
        populate: bool,
    ) -> Result<Pid, VmError> {
        let pid = self.create_process().unwrap();
        let flags = if populate {
            MapFlags::private_populate()
        } else {
            MapFlags::private()
        };
        self.mmap(pid, code_bytes, Prot::ReadExec, Backing::Anon, flags)?;
        self.mmap(pid, heap_bytes, Prot::ReadWrite, Backing::Anon, flags)?;
        self.mmap(pid, stack_bytes, Prot::ReadWrite, Backing::Anon, flags)?;
        Ok(pid)
    }

    /// Map a grow-down stack: `initial_bytes` mapped now below the
    /// returned top-of-stack, growing automatically (on faults) down
    /// to `max_bytes`, with a guard gap below the limit. This is one
    /// of the page-granular features the paper concedes file-only
    /// memory loses ("guard pages... cannot easily be supported").
    pub fn map_stack(
        &mut self,
        pid: Pid,
        initial_bytes: u64,
        max_bytes: u64,
    ) -> Result<VirtAddr, VmError> {
        if initial_bytes == 0 || initial_bytes > max_bytes {
            return Err(VmError::BadRange);
        }
        self.machine.charge_syscall();
        self.machine.charge_kind(CostKind::MmapFixed);
        self.machine.charge_kind(CostKind::VmaCreate);
        let initial = o1_hw::round_up_pages(initial_bytes);
        let max = o1_hw::round_up_pages(max_bytes);
        let proc = self.proc_mut(pid)?;
        // Reserve the whole growth window plus a guard page.
        let window = proc.vmas.find_gap(VirtAddr(MMAP_BASE), max + 2 * PAGE_SIZE) + PAGE_SIZE;
        let limit = window + PAGE_SIZE; // guard page below the limit
        let top = limit + max;
        proc.vmas.insert(Vma {
            start: top - initial,
            end: top,
            prot: Prot::ReadWrite,
            backing: Backing::Anon,
            shared: false,
            pinned: false,
            grow_limit: Some(limit),
        });
        Ok(top)
    }

    /// If `va` falls between a grow-down VMA's limit and its current
    /// start, extend the VMA down to cover it and return the grown
    /// VMA.
    fn try_grow_stack(&mut self, pid: Pid, va: VirtAddr) -> Result<Option<Vma>, VmError> {
        let proc = self.proc_mut(pid)?;
        let Some(next) = proc.vmas.next_above(va) else {
            return Ok(None);
        };
        let (old_start, limit) = match next.grow_limit {
            Some(limit) if va >= limit && va < next.start => (next.start, limit),
            _ => return Ok(None),
        };
        let _ = limit;
        let new_start = va.align_down(PAGE_SIZE);
        proc.vmas.grow_down(old_start, new_start);
        let grown = proc.vmas.find(va).copied();
        self.machine.charge_kind(CostKind::VmaCreate);
        Ok(grown)
    }

    // ---- mmap / munmap ----------------------------------------------------

    /// `mmap`: create a mapping of `len` bytes (rounded up to pages).
    ///
    /// With `flags.populate`, every page is allocated, zeroed and
    /// mapped now (linear); otherwise only the VMA is created
    /// (constant, ≈ 8 µs like the paper's tmpfs measurement).
    ///
    /// # Examples
    /// ```
    /// use o1_vm::{Backing, BaselineKernel, MapFlags, MemSys, Prot};
    ///
    /// let mut k = BaselineKernel::builder().dram(64 << 20).build();
    /// let pid = MemSys::create_process(&mut k).unwrap();
    /// let va = k
    ///     .mmap(pid, 1 << 20, Prot::ReadWrite, Backing::Anon, MapFlags::private())
    ///     .unwrap();
    /// k.store(pid, va, 1).unwrap(); // demand faults the first page
    /// assert_eq!(k.machine().perf.minor_faults, 1);
    /// ```
    pub fn mmap(
        &mut self,
        pid: Pid,
        len: u64,
        prot: Prot,
        backing: Backing,
        flags: MapFlags,
    ) -> Result<VirtAddr, VmError> {
        if len == 0 {
            return Err(VmError::BadRange);
        }
        let t0 = self.machine.op_start();
        self.machine.charge_syscall();
        self.machine.charge_kind(CostKind::MmapFixed);
        self.machine.charge_kind(CostKind::VmaCreate);
        let mut len = o1_hw::round_up_pages(len);
        let anon = matches!(backing, Backing::Anon);
        if anon && self.thp == ThpMode::GreedyHuge {
            // The paper's trade: waste up to 2 MiB of space per
            // mapping so every page can be huge.
            let rounded = len.next_multiple_of(HUGE_2M);
            self.space_overhead += rounded - len;
            len = rounded;
        }
        if let Backing::File { id, .. } = backing {
            self.tmpfs.inc_ref(id).map_err(VmError::from)?;
        }
        let huge_align = anon && self.thp != ThpMode::Never && len >= HUGE_2M;
        let proc = self.proc_mut(pid)?;
        // Leave a one-page guard gap before the region, as real mmap
        // layouts do (also keeps stacks from silently merging into
        // heaps). Huge-eligible regions are 2 MiB-aligned so the
        // aligned-coverage test can succeed at all.
        let start = if huge_align {
            proc.vmas
                .find_gap(VirtAddr(MMAP_BASE), len + HUGE_2M + PAGE_SIZE)
                .align_up(HUGE_2M)
        } else {
            proc.vmas.find_gap(VirtAddr(MMAP_BASE), len + PAGE_SIZE) + PAGE_SIZE
        };
        let vma = Vma {
            start,
            end: start + len,
            prot,
            backing,
            shared: flags.shared,
            pinned: false,
            grow_limit: None,
        };
        proc.vmas.insert(vma);
        if flags.populate {
            let mut va = start;
            let end = start + len;
            while va < end {
                if self.machine.fastforward() {
                    let left = (end.0 - va.0) / PAGE_SIZE;
                    if let Some(done) = self.try_populate_run(pid, va, left, vma) {
                        va += done * PAGE_SIZE;
                        continue;
                    }
                }
                self.populate_page(pid, va, vma)?;
                va += PAGE_SIZE;
            }
        }
        self.machine.op_end(t0, OpKind::Mmap, MECH);
        self.poll_timeline();
        Ok(start)
    }

    /// `munmap`: remove `[va, va+len)`. Per-page teardown, as on
    /// Linux.
    pub fn munmap(&mut self, pid: Pid, va: VirtAddr, len: u64) -> Result<(), VmError> {
        let t0 = self.machine.op_start();
        self.machine.charge_syscall();
        if len == 0 || !va.is_aligned(PAGE_SIZE) {
            return Err(VmError::BadRange);
        }
        self.unmap_region(pid, va, o1_hw::round_up_pages(len))?;
        self.machine.op_end(t0, OpKind::Munmap, MECH);
        self.poll_timeline();
        Ok(())
    }

    fn unmap_region(&mut self, pid: Pid, va: VirtAddr, len: u64) -> Result<(), VmError> {
        let removed = {
            let proc = self.proc_mut(pid)?;
            proc.vmas.remove_range(va, len)
        };
        self.machine.charge_kind(CostKind::VmaDestroy);
        let (root, asid) = {
            let p = self.proc(pid)?;
            (p.root, p.asid)
        };
        for piece in removed {
            if let Backing::File { id, .. } = piece.backing {
                let (machine, tmpfs, alloc) = (&mut self.machine, &mut self.tmpfs, &mut self.alloc);
                tmpfs.dec_ref(machine, alloc, id).map_err(VmError::from)?;
            }
            // Huge leaves straddling the piece boundaries must be
            // split first (Linux "fragments them into 4KB pages").
            self.split_huge_covering(pid, root, asid, piece.start);
            self.split_huge_covering(pid, root, asid, piece.end);
            let mut page_va = piece.start;
            while page_va < piece.end {
                self.drop_page_mapping(pid, root, asid, page_va);
                let vpage = page_va.page().0;
                if let Some(slot) = self.proc_mut(pid)?.swapped.remove(&vpage) {
                    self.swap.discard(slot);
                }
                page_va += PAGE_SIZE;
            }
        }
        self.mmu.charge_shootdown(&mut self.machine, asid);
        Ok(())
    }

    /// In-place split of the huge mapping covering `boundary`, if one
    /// exists and the boundary falls strictly inside it: the single
    /// huge PTE becomes 512 base PTEs over the *same* frames; the
    /// underlying order-9 block is freed only when its last base page
    /// goes (`huge_parts` refcount). This is the huge-page
    /// fragmentation cost the paper's §3 describes.
    fn split_huge_covering(&mut self, pid: Pid, root: PtNodeId, asid: Asid, boundary: VirtAddr) {
        let Some(t) = self.pt.lookup(root, boundary) else {
            return;
        };
        if t.size == PageSize::Base || boundary.is_aligned(t.size.bytes()) {
            return;
        }
        self.split_huge_leaf(pid, root, asid, boundary.align_down(t.size.bytes()));
    }

    /// Unconditionally split the huge leaf based at `leaf_va`.
    fn split_huge_leaf(&mut self, pid: Pid, root: PtNodeId, asid: Asid, leaf_va: VirtAddr) {
        let (head, flags, size) = self
            .pt
            .unmap(&mut self.machine, root, leaf_va)
            .expect("split of unmapped leaf");
        self.mmu.invalidate_page(&mut self.machine, asid, leaf_va);
        let pages = size.bytes() / PAGE_SIZE;
        self.huge_parts.insert(head.0, pages as u32);
        // Head-frame metadata dissolves into per-frame records.
        let (head_rmap_cleared, was_swapbacked) = {
            let m = self.meta.get_mut(head);
            m.rmap.clear();
            m.clear(PageFlag::Head);
            (true, m.test(PageFlag::Swapbacked))
        };
        debug_assert!(head_rmap_cleared);
        for i in 0..pages {
            let frame = head + i;
            let va = leaf_va + i * PAGE_SIZE;
            self.pt
                .map(&mut self.machine, root, va, frame, PageSize::Base, flags)
                .expect("fresh base slot inside split leaf");
            self.machine.charge_kind(CostKind::PageMetaUpdate);
            self.machine.perf.page_meta_updates += 1;
            let meta = self.meta.get_mut(frame);
            meta.mapcount = 1;
            meta.rmap.push((pid, va));
            if was_swapbacked {
                meta.set(PageFlag::Swapbacked);
            }
            meta.set(PageFlag::Uptodate);
            if self.swap_enabled && was_swapbacked {
                self.lru.insert(frame);
            }
        }
        self.mmu.charge_shootdown(&mut self.machine, asid);
    }

    /// Return one base frame to the allocator, honouring split huge
    /// blocks: a fragment frees its parent order-9 block only when the
    /// last fragment dies.
    fn free_frame(&mut self, frame: FrameNo) {
        let block = frame.0 & !511;
        if let Some(live) = self.huge_parts.get_mut(&block) {
            *live -= 1;
            if *live == 0 {
                self.huge_parts.remove(&block);
                self.alloc
                    .free_block(&mut self.machine, PhysExtent::new(FrameNo(block), 512));
            }
            return;
        }
        self.alloc
            .free_block(&mut self.machine, PhysExtent::new(frame, 1));
    }

    /// Unmap the mapping covering `va` (any size) and release the
    /// frame(s) if this was the last mapping and they are
    /// process-owned (not file pages).
    fn drop_page_mapping(&mut self, pid: Pid, root: PtNodeId, asid: Asid, va: VirtAddr) {
        let Some((frame, _flags, size)) = self.pt.unmap(&mut self.machine, root, va) else {
            return;
        };
        self.mmu.invalidate_page(&mut self.machine, asid, va);
        self.machine.charge_kind(CostKind::PageMetaUpdate);
        self.machine.perf.page_meta_updates += 1;
        let meta = self.meta.get_mut(frame);
        meta.mapcount = meta.mapcount.saturating_sub(1);
        meta.rmap.retain(|&(p, v)| !(p == pid && v == va));
        let file_owned = meta.test(PageFlag::Mappedtodisk);
        if meta.mapcount == 0 && !file_owned {
            self.meta.reset(frame);
            self.lru.remove(frame);
            match size {
                PageSize::Base => self.free_frame(frame),
                // A whole huge leaf: the block was never split, so it
                // returns to the buddy in one piece.
                _ => self.alloc.free_block(
                    &mut self.machine,
                    PhysExtent::new(frame, size.bytes() / PAGE_SIZE),
                ),
            }
        }
    }

    /// `mprotect`: change protection; splits VMAs and rewrites every
    /// present PTE in the range (linear, as on Linux).
    pub fn mprotect(
        &mut self,
        pid: Pid,
        va: VirtAddr,
        len: u64,
        prot: Prot,
    ) -> Result<(), VmError> {
        self.machine.charge_syscall();
        let len = o1_hw::round_up_pages(len);
        let (root, asid) = {
            let p = self.proc(pid)?;
            (p.root, p.asid)
        };
        {
            let proc = self.proc_mut(pid)?;
            if !proc.vmas.set_prot(va, len, prot) {
                return Err(VmError::BadRange);
            }
        }
        // Huge leaves straddling the range edges are split; fully
        // covered huge leaves are re-flagged in place (still huge).
        self.split_huge_covering(pid, root, asid, va);
        self.split_huge_covering(pid, root, asid, va + len);
        let mut page_va = va;
        while page_va < va + len {
            if let Some((frame, old, size)) = self.pt.unmap(&mut self.machine, root, page_va) {
                let keep_cow = old.contains(PteFlags::COW);
                let mut flags = pte_for(prot);
                if keep_cow {
                    flags = flags.difference(PteFlags::WRITE).union(PteFlags::COW);
                }
                self.pt
                    .map(&mut self.machine, root, page_va, frame, size, flags)
                    .expect("remap after unmap");
                page_va += size.bytes();
            } else {
                page_va += PAGE_SIZE;
            }
        }
        self.mmu.flush_asid(&mut self.machine, asid);
        self.mmu.charge_shootdown(&mut self.machine, asid);
        Ok(())
    }

    /// `madvise(MADV_DONTNEED)`: drop anonymous pages in the range.
    pub fn madvise_dontneed(&mut self, pid: Pid, va: VirtAddr, len: u64) -> Result<(), VmError> {
        self.machine.charge_syscall();
        let (root, asid) = {
            let p = self.proc(pid)?;
            (p.root, p.asid)
        };
        let len = o1_hw::round_up_pages(len);
        self.split_huge_covering(pid, root, asid, va);
        self.split_huge_covering(pid, root, asid, va + len);
        let mut page_va = va;
        while page_va < va + len {
            self.drop_page_mapping(pid, root, asid, page_va);
            page_va += PAGE_SIZE;
        }
        self.mmu.charge_shootdown(&mut self.machine, asid);
        Ok(())
    }

    // ---- page population & faults ------------------------------------------

    fn populate_page(&mut self, pid: Pid, va: VirtAddr, vma: Vma) -> Result<(), VmError> {
        let (root, _asid) = {
            let p = self.proc(pid)?;
            (p.root, p.asid)
        };
        if self.pt.lookup(root, va).is_some() {
            return Ok(());
        }
        match vma.backing {
            Backing::Anon => {
                // Transparent huge page: map 2 MiB at once when policy
                // and alignment allow.
                if self.thp != ThpMode::Never && self.try_populate_huge(pid, root, va, &vma)? {
                    return Ok(());
                }
                let frame = self.alloc_frame()?;
                self.pt
                    .map(
                        &mut self.machine,
                        root,
                        va,
                        frame,
                        PageSize::Base,
                        pte_for(vma.prot),
                    )
                    .expect("fresh anon slot");
                let meta = self.meta.get_mut(frame);
                meta.mapcount = 1;
                meta.rmap.push((pid, va));
                meta.set(PageFlag::Swapbacked);
                meta.set(PageFlag::Lru);
                meta.set(PageFlag::Uptodate);
                self.machine.charge_kind(CostKind::PageMetaUpdate);
                self.machine.perf.page_meta_updates += 1;
                if self.swap_enabled {
                    self.lru.insert(frame);
                }
            }
            Backing::File { id, .. } => {
                let file_off = vma.file_offset_of(va).expect("va inside file vma");
                let file_page = file_off / PAGE_SIZE;
                let (machine, tmpfs, alloc) = (&mut self.machine, &mut self.tmpfs, &mut self.alloc);
                let frame = tmpfs
                    .get_or_alloc_page(machine, alloc, id, file_page)
                    .map_err(VmError::from)?;
                let flags = if vma.shared {
                    pte_for(vma.prot)
                } else {
                    // MAP_PRIVATE: share the file page read-only; a
                    // write will copy (COW).
                    pte_for(vma.prot)
                        .difference(PteFlags::WRITE)
                        .union(cow_bit(vma.prot))
                };
                self.pt
                    .map(&mut self.machine, root, va, frame, PageSize::Base, flags)
                    .expect("fresh file slot");
                let meta = self.meta.get_mut(frame);
                meta.mapcount += 1;
                meta.rmap.push((pid, va));
                meta.set(PageFlag::Mappedtodisk);
                meta.set(PageFlag::Uptodate);
                self.machine.charge_kind(CostKind::PageMetaUpdate);
                self.machine.perf.page_meta_updates += 1;
            }
        }
        Ok(())
    }

    /// Bulk-populate fast-forward: install up to `pages` fresh
    /// anonymous pages at `va` in one fused pass, charging exactly
    /// what that many [`populate_page`](Self::populate_page) calls
    /// would have. Proof obligations — base pages only (no THP),
    /// anonymous backing, every page provably absent from the page
    /// tables ([`PageTables::absent_run`]), DRAM-only placement, and
    /// enough free frames that no allocation would have triggered
    /// reclaim or failed mid-run. Returns the fused page count
    /// (`≥ 2`), or `None` to fall back to the per-page interpreter —
    /// which is charge-identical, merely slower on the host.
    ///
    /// The pass is free of host heap allocations: `mmap(populate)` is
    /// the drive of the host-memory self-observation figures, whose
    /// peak-heap numbers must not depend on the fast-forward engine.
    fn try_populate_run(&mut self, pid: Pid, va: VirtAddr, pages: u64, vma: Vma) -> Option<u64> {
        if pages < 2 || self.thp != ThpMode::Never || !matches!(vma.backing, Backing::Anon) {
            return None;
        }
        // One tier keeps the zeroing charge uniform (true of every
        // baseline machine; cheap to re-check).
        if self.machine.phys.nvm_frames() != 0 {
            return None;
        }
        // No allocation in the run may dip below the reclaim
        // watermark or come up empty: the j-th allocation starts with
        // `free0 - j` frames free, so the whole run stays above the
        // watermark iff `span ≤ free0 - watermark + 1` (and OOM-free
        // iff `span ≤ free0`). Clamping hands the tail — and with it
        // the reclaim/OOM behaviour — to the interpreter unchanged.
        let free0 = self.alloc.free_frames();
        let max_n = if self.swap_enabled {
            if free0 < self.low_watermark {
                return None;
            }
            free0.min(free0 - self.low_watermark + 1)
        } else {
            free0
        };
        let want = pages.min(max_n);
        if want < 2 {
            return None;
        }
        let root = self.procs.get(pid)?.root;
        let span = self.pt.absent_run(root, va, want);
        if span < 2 {
            return None;
        }
        // Committed: everything below is infallible and replays the
        // interpreter's per-page state mutations, then the aggregate
        // charges (the ledger sums `(phase, kind)` rows and the clock
        // is a sum, so order does not matter).
        let flags = pte_for(vma.prot);
        let swap_on = self.swap_enabled;
        let mut at = va;
        let mut nodes_total = 0u64;
        let BaselineKernel {
            machine,
            pt,
            alloc,
            meta,
            lru,
            ..
        } = self;
        alloc
            .alloc_run_with(machine, span, |m, frame, _splits| {
                m.phys.zero_frames(frame, 1);
                let nodes = pt
                    .map_uncharged(root, at, frame, PageSize::Base, flags)
                    .expect("absence proven for the whole run");
                nodes_total += nodes;
                let pm = meta.get_mut(frame);
                pm.mapcount = 1;
                pm.rmap.push((pid, at));
                pm.set(PageFlag::Swapbacked);
                pm.set(PageFlag::Lru);
                pm.set(PageFlag::Uptodate);
                if swap_on {
                    lru.insert(frame);
                }
                at += PAGE_SIZE;
            })
            .expect("span clamped to free frames");
        machine.charge_zero_fg(MemTier::Dram, span * PAGE_SIZE);
        if nodes_total > 0 {
            machine.charge_opn(CostKind::PtNodeAlloc, nodes_total);
            machine.perf.pt_nodes_alloced += nodes_total;
        }
        machine.charge_opn(CostKind::PteWrite, span + nodes_total);
        machine.perf.pte_writes += span + nodes_total;
        machine.charge_opn(CostKind::PageMetaUpdate, span);
        machine.perf.page_meta_updates += span;
        machine.note_ffwd_run(span);
        Some(span)
    }

    /// Allocate and map one 2 MiB huge page covering `va`, if the VMA
    /// fully covers the aligned region and a 512-frame block is
    /// available. Returns true on success.
    fn try_populate_huge(
        &mut self,
        pid: Pid,
        root: PtNodeId,
        va: VirtAddr,
        vma: &Vma,
    ) -> Result<bool, VmError> {
        let leaf_va = va.align_down(HUGE_2M);
        if leaf_va < vma.start || leaf_va + HUGE_2M > vma.end {
            return Ok(false);
        }
        // Any existing base mapping or swapped page in the region
        // forbids the huge mapping.
        let mut at = leaf_va;
        while at < leaf_va + HUGE_2M {
            if self.pt.lookup(root, at).is_some()
                || self.proc(pid)?.swapped.contains_key(&at.page().0)
            {
                return Ok(false);
            }
            at += PAGE_SIZE;
        }
        let Ok(ext) = self.alloc.alloc_order(&mut self.machine, 9) else {
            return Ok(false); // fragmentation: fall back to base pages
        };
        self.machine.charge_zero_fg(MemTier::Dram, HUGE_2M);
        self.machine.phys.zero_frames(ext.start, ext.frames);
        self.pt
            .map(
                &mut self.machine,
                root,
                leaf_va,
                ext.start,
                PageSize::Huge2M,
                pte_for(vma.prot),
            )
            .expect("checked region empty");
        let meta = self.meta.get_mut(ext.start);
        meta.mapcount = 1;
        meta.rmap.push((pid, leaf_va));
        meta.set(PageFlag::Head);
        meta.set(PageFlag::Swapbacked);
        meta.set(PageFlag::Uptodate);
        self.machine.charge_kind(CostKind::PageMetaUpdate);
        self.machine.perf.page_meta_updates += 1;
        // Huge pages are not on the reclaim lists (they would need a
        // split first); splitting re-inserts the fragments.
        Ok(true)
    }

    fn page_fault(&mut self, pid: Pid, va: VirtAddr, access: Access) -> Result<(), VmError> {
        self.machine.charge_kind(CostKind::FaultTrap);
        self.machine.charge_kind(CostKind::FaultHandlerBase);
        self.machine.charge_kind(CostKind::VmaFind);
        let vma = match self.proc(pid)?.vmas.find(va) {
            Some(v) => *v,
            None => {
                // Stack growth: a fault just below a grow-down VMA
                // (and above its limit) extends the region.
                match self.try_grow_stack(pid, va)? {
                    Some(grown) => grown,
                    None => {
                        self.machine.perf.prot_faults += 1;
                        return Err(VmError::BadAddress);
                    }
                }
            }
        };
        if access == Access::Write && !vma.prot.writable() {
            self.machine.perf.prot_faults += 1;
            return Err(VmError::ProtectionFault);
        }
        let vpage = va.page().0;
        if let Some(&slot) = self.proc(pid)?.swapped.get(&vpage) {
            self.machine.perf.major_faults += 1;
            self.proc_mut(pid)?.swapped.remove(&vpage);
            return self.swap_in_page(pid, va.page().base(), slot);
        }
        self.machine.perf.minor_faults += 1;
        self.populate_page(pid, va.page().base(), vma)?;
        // Fault-around: opportunistically populate the following pages
        // of the VMA without extra traps (Linux does this for file
        // mappings; configurable here for both).
        if self.fault_around > 1 {
            let root = self.proc(pid)?.root;
            for i in 1..u64::from(self.fault_around) {
                let next = va.page().base() + i * PAGE_SIZE;
                if next >= vma.end
                    || self.pt.lookup(root, next).is_some()
                    || self.proc(pid)?.swapped.contains_key(&next.page().0)
                {
                    continue;
                }
                self.populate_page(pid, next, vma)?;
            }
        }
        Ok(())
    }

    /// Handle a protection fault: break COW if applicable.
    fn protection_fault(&mut self, pid: Pid, va: VirtAddr, access: Access) -> Result<(), VmError> {
        self.machine.charge_kind(CostKind::FaultTrap);
        self.machine.charge_kind(CostKind::FaultHandlerBase);
        self.machine.charge_kind(CostKind::VmaFind);
        let vma = match self.proc(pid)?.vmas.find(va) {
            Some(v) => *v,
            None => {
                self.machine.perf.prot_faults += 1;
                return Err(VmError::BadAddress);
            }
        };
        let (root, asid) = {
            let p = self.proc(pid)?;
            (p.root, p.asid)
        };
        let page_va = va.page().base();
        let Some(t) = self.pt.lookup(root, page_va) else {
            self.machine.perf.prot_faults += 1;
            return Err(VmError::ProtectionFault);
        };
        let is_cow_write =
            access == Access::Write && t.flags.contains(PteFlags::COW) && vma.prot.writable();
        if !is_cow_write {
            self.machine.perf.prot_faults += 1;
            return Err(VmError::ProtectionFault);
        }
        self.machine.perf.minor_faults += 1;
        let old_frame = t.pa.frame();
        // If we are the only mapper of a non-file page, just upgrade.
        let (sole_owner, file_owned) = {
            let meta = self.meta.get(old_frame);
            (meta.mapcount == 1, meta.test(PageFlag::Mappedtodisk))
        };
        if sole_owner && !file_owned {
            self.pt.unmap(&mut self.machine, root, page_va);
            self.pt
                .map(
                    &mut self.machine,
                    root,
                    page_va,
                    old_frame,
                    PageSize::Base,
                    pte_for(vma.prot),
                )
                .expect("remap upgraded page");
            self.mmu.invalidate_page(&mut self.machine, asid, page_va);
            return Ok(());
        }
        // Copy the page.
        let new_frame = self.alloc_frame()?;
        self.machine.charge_kind(CostKind::CopyPage);
        let mut buf = vec![0u8; PAGE_SIZE as usize];
        self.machine.phys.read(old_frame.base(), &mut buf);
        self.machine.phys.write(new_frame.base(), &buf);
        // Swing the PTE.
        self.pt.unmap(&mut self.machine, root, page_va);
        self.pt
            .map(
                &mut self.machine,
                root,
                page_va,
                new_frame,
                PageSize::Base,
                pte_for(vma.prot),
            )
            .expect("remap copied page");
        self.mmu.invalidate_page(&mut self.machine, asid, page_va);
        // Old frame bookkeeping.
        {
            let meta = self.meta.get_mut(old_frame);
            meta.mapcount = meta.mapcount.saturating_sub(1);
            meta.rmap.retain(|&(p, v)| !(p == pid && v == page_va));
        }
        let drop_old = {
            let meta = self.meta.get(old_frame);
            meta.mapcount == 0 && !meta.test(PageFlag::Mappedtodisk)
        };
        if drop_old {
            self.meta.reset(old_frame);
            self.lru.remove(old_frame);
            self.free_frame(old_frame);
        }
        // New frame bookkeeping.
        let meta = self.meta.get_mut(new_frame);
        meta.mapcount = 1;
        meta.rmap.push((pid, page_va));
        meta.set(PageFlag::Swapbacked);
        meta.set(PageFlag::Uptodate);
        self.machine.charge_kind(CostKind::PageMetaUpdate);
        self.machine.perf.page_meta_updates += 1;
        if self.swap_enabled {
            self.lru.insert(new_frame);
        }
        Ok(())
    }

    fn swap_in_page(&mut self, pid: Pid, va: VirtAddr, slot: SwapSlot) -> Result<(), VmError> {
        let vma = *self.proc(pid)?.vmas.find(va).ok_or(VmError::BadAddress)?;
        let frame = self.alloc_frame()?;
        let data = self.swap.swap_in(&mut self.machine, slot);
        self.machine.phys.put_frame_image(frame, data);
        let root = self.proc(pid)?.root;
        self.pt
            .map(
                &mut self.machine,
                root,
                va,
                frame,
                PageSize::Base,
                pte_for(vma.prot),
            )
            .expect("swapped page slot empty");
        let meta = self.meta.get_mut(frame);
        meta.mapcount = 1;
        meta.rmap.push((pid, va));
        meta.set(PageFlag::Swapbacked);
        meta.set(PageFlag::Uptodate);
        self.machine.charge_kind(CostKind::PageMetaUpdate);
        self.machine.perf.page_meta_updates += 1;
        if self.swap_enabled {
            self.lru.insert(frame);
        }
        Ok(())
    }

    // ---- frame allocation & reclaim -----------------------------------------

    /// Allocate one zeroed frame, reclaiming when below the watermark.
    fn alloc_frame(&mut self) -> Result<FrameNo, VmError> {
        if self.alloc.free_frames() < self.low_watermark && self.swap_enabled {
            self.reclaim_until(self.low_watermark);
        }
        let ext = match self.alloc.alloc_one(&mut self.machine) {
            Ok(e) => e,
            Err(_) if self.swap_enabled => {
                self.reclaim_until(self.low_watermark.max(1));
                self.alloc
                    .alloc_one(&mut self.machine)
                    .map_err(|_| VmError::NoMemory)?
            }
            Err(_) => return Err(VmError::NoMemory),
        };
        // Baseline zeroes on the allocation critical path.
        self.machine.charge_zero_fg(MemTier::Dram, PAGE_SIZE);
        self.machine.phys.zero_frames(ext.start, 1);
        Ok(ext.start)
    }

    /// Run the reclaim scan until `target` frames are free or
    /// candidates are exhausted. Every examined page charges the scan
    /// cost — the linear burden the paper wants to delete.
    pub fn reclaim_until(&mut self, target: u64) -> u64 {
        let mut evicted = 0;
        let mut budget = 2 * self.lru.len() + 1;
        while self.alloc.free_frames() < target && budget > 0 {
            budget -= 1;
            let Some(frame) = self.lru.next_candidate() else {
                break;
            };
            self.machine.charge_kind(CostKind::ReclaimScanPage);
            self.machine.perf.reclaim_scanned += 1;
            let (pins, rmap) = {
                let meta = self.meta.get(frame);
                (meta.pins, meta.rmap.clone())
            };
            if pins > 0 || rmap.is_empty() {
                self.lru.verdict(frame, ScanDecision::Rotate);
                continue;
            }
            // Referenced anywhere → second chance.
            let mut referenced = false;
            for &(pid, va) in &rmap {
                if let Ok(p) = self.proc(pid) {
                    let root = p.root;
                    if self.pt.test_and_clear_accessed(root, va) == Some(true) {
                        referenced = true;
                    }
                }
            }
            if referenced {
                self.lru.verdict(frame, ScanDecision::Rotate);
                continue;
            }
            // Evict.
            self.lru.verdict(frame, ScanDecision::Evict);
            let data = self.machine.phys.take_frame_image(frame);
            let slot = self.swap.swap_out(&mut self.machine, data);
            let mut round_asid = None;
            for (pid, va) in rmap {
                let Ok(p) = self.proc(pid) else { continue };
                let (root, asid) = (p.root, p.asid);
                round_asid.get_or_insert(asid);
                self.pt.unmap(&mut self.machine, root, va);
                self.mmu.invalidate_page(&mut self.machine, asid, va);
                if let Ok(p) = self.proc_mut(pid) {
                    p.swapped.insert(va.page().0, slot);
                }
            }
            // One closing shootdown round per evicted frame, keyed by
            // the first mapper's address space (shared frames notify
            // its responders; further mappers were already notified by
            // the per-page broadcasts above).
            match round_asid {
                Some(asid) => self.mmu.charge_shootdown(&mut self.machine, asid),
                None => self.machine.charge_shootdown(0),
            }
            self.meta.reset(frame);
            self.free_frame(frame);
            evicted += 1;
        }
        self.poll_timeline();
        evicted
    }

    // ---- memory access -----------------------------------------------------

    /// Translate `va`, handling faults (demand paging, COW, swap-in).
    pub fn resolve(&mut self, pid: Pid, va: VirtAddr, access: Access) -> Result<PhysAddr, VmError> {
        for _ in 0..4 {
            let (root, asid) = {
                let p = self.proc(pid)?;
                (p.root, p.asid)
            };
            match self.mmu.translate(
                &mut self.machine,
                &mut self.pt,
                root,
                &self.no_ranges,
                asid,
                va,
                access,
            ) {
                Ok(t) => return Ok(t.pa),
                Err(TranslateError::NotMapped) => self.page_fault(pid, va, access)?,
                Err(TranslateError::Protection) => self.protection_fault(pid, va, access)?,
            }
        }
        unreachable!("fault handler did not make progress at {va:?}")
    }

    /// Latency bookkeeping for one access: clock at entry plus the
    /// fault count, so the op can be classified hit vs fault at exit.
    /// `None` when untraced, keeping the hot path a single branch.
    #[inline]
    fn access_op_start(&self) -> Option<(o1_hw::SimNs, u64)> {
        if self.machine.traced() {
            let perf = &self.machine.perf;
            Some((self.machine.op_start(), perf.minor_faults + perf.major_faults))
        } else {
            None
        }
    }

    /// Close an access op span: classify by whether [`resolve`] took
    /// any demand fault and record the latency under the current phase.
    #[inline]
    fn access_op_end(&mut self, started: Option<(o1_hw::SimNs, u64)>) {
        if let Some((t0, faults0)) = started {
            let perf = &self.machine.perf;
            let op = if perf.minor_faults + perf.major_faults > faults0 {
                OpKind::AccessFault
            } else {
                OpKind::AccessHit
            };
            self.machine.op_end(t0, op, MECH);
            self.poll_timeline();
        }
    }

    /// User-level 8-byte load.
    pub fn load(&mut self, pid: Pid, va: VirtAddr) -> Result<u64, VmError> {
        let op = self.access_op_start();
        let pa = self.resolve(pid, va, Access::Read)?;
        let tier = self.machine.phys.tier(pa.frame());
        self.machine.charge_load(tier);
        let out = self.machine.phys.read_u64(pa);
        self.access_op_end(op);
        Ok(out)
    }

    /// User-level 8-byte store.
    pub fn store(&mut self, pid: Pid, va: VirtAddr, value: u64) -> Result<(), VmError> {
        let op = self.access_op_start();
        let pa = self.resolve(pid, va, Access::Write)?;
        let tier = self.machine.phys.tier(pa.frame());
        self.machine.charge_store(tier);
        self.machine.phys.write_u64(pa, value);
        self.access_op_end(op);
        Ok(())
    }

    /// Run-compressed span execution: `len` accesses at `va`,
    /// `va + stride`, … (byte stride), stores writing `first_value + k`
    /// at access `k`. Translation-uniform prefixes are fast-forwarded
    /// — the MMU proves every access in the prefix hits the same
    /// resident TLB entry with the same outcome
    /// ([`Mmu::translate_run`]), the whole prefix is charged in O(1)
    /// charge calls, and only data stores run per element. Anything it
    /// cannot prove (cold TLB, faults, boundaries) is interpreted one
    /// access at a time through [`load`](Self::load) /
    /// [`store`](Self::store), so simulated clock, counters, ledger
    /// and memory contents are identical to the plain loop.
    pub fn access_span(
        &mut self,
        pid: Pid,
        va: VirtAddr,
        stride: i64,
        len: u64,
        write: bool,
        first_value: u64,
    ) -> Result<(), VmError> {
        let access = if write { Access::Write } else { Access::Read };
        let mut k = 0u64;
        while k < len {
            let a = VirtAddr(va.0.wrapping_add_signed(stride.wrapping_mul(k as i64)));
            if self.machine.fastforward() && len - k >= 2 {
                let (root, asid) = {
                    let p = self.proc(pid)?;
                    (p.root, p.asid)
                };
                let t0 = self.machine.op_start();
                if let Some((pa, span)) = self.mmu.translate_run(
                    &mut self.machine,
                    &mut self.pt,
                    root,
                    asid,
                    a,
                    stride,
                    len - k,
                    access,
                ) {
                    crate::runs::bulk_memory(
                        &mut self.machine,
                        pa,
                        stride,
                        span,
                        write,
                        first_value + k,
                    );
                    // Every access in the span hit — `span` AccessHit
                    // latencies, each of the identical per-access cost.
                    self.machine.op_end_n(t0, OpKind::AccessHit, MECH, span);
                    self.poll_timeline();
                    k += span;
                    continue;
                }
                // The dual case: prove the accesses all *miss* and
                // demand-fault fresh pages, then install the mappings
                // and charge the faults analytically.
                if let Some(span) =
                    self.try_fault_run(pid, root, asid, a, stride, len - k, write, first_value + k, t0)
                {
                    k += span;
                    continue;
                }
            }
            if write {
                self.store(pid, a, first_value + k)?;
            } else {
                self.load(pid, a)?;
            }
            k += 1;
        }
        Ok(())
    }

    /// Bulk-fault fast-forward — the dual of [`Mmu::translate_run`]'s
    /// hit span: prove that the next `len` accesses of the run all
    /// miss translation and demand-fault fresh anonymous base pages
    /// with a uniform outcome, then install every mapping and replay
    /// the aggregate charges of `span` interpreted faults in O(1)
    /// charge calls (plus the O(span) state writes the interpreter
    /// would also make).
    ///
    /// Proof obligations, checked before anything is charged or
    /// mutated:
    ///
    /// * plain demand paging — no THP, no fault-around;
    /// * one memory tier (every baseline machine is DRAM-only);
    /// * the faulting process has no pages in swap (a swap slot would
    ///   turn a minor fault into a major one mid-run);
    /// * one protection-uniform anonymous VMA covers the whole fused
    ///   prefix (clamped via [`span_within`]), and a write run is
    ///   permitted by it — a protection error falls back so the
    ///   interpreter raises it with exact charges;
    /// * no allocation would trigger reclaim or OOM (free-frame
    ///   clamp, as in the bulk-populate path);
    /// * no translation is installed anywhere in the run and no
    ///   unobserved invalidation overlaps it
    ///   ([`Mmu::translate_miss_run`]).
    ///
    /// Fault latencies within a run are *not* uniform — buddy splits
    /// and page-table node creation vary page to page — so the ledger
    /// records groups of equal-latency `AccessFault` ops
    /// ([`Machine::op_record_n`]) whose per-op cost is reconstructed
    /// from the cost model; a debug assertion checks the records sum
    /// exactly to the clock advance. Returns the fused access count
    /// (`≥ 2`), or `None` to interpret at least one access.
    #[allow(clippy::too_many_arguments)] // one parameter per proof input
    fn try_fault_run(
        &mut self,
        pid: Pid,
        root: PtNodeId,
        asid: Asid,
        va: VirtAddr,
        stride: i64,
        len: u64,
        write: bool,
        first_value: u64,
        t0: o1_hw::SimNs,
    ) -> Option<u64> {
        if self.thp != ThpMode::Never || self.fault_around != 1 {
            return None;
        }
        if self.machine.phys.nvm_frames() != 0 {
            return None;
        }
        let (vma_start, vma_end, prot) = {
            let p = self.procs.get(pid)?;
            if !p.swapped.is_empty() {
                return None;
            }
            let vma = p.vmas.find(va)?;
            if !matches!(vma.backing, Backing::Anon) {
                return None;
            }
            if write && !vma.prot.writable() {
                return None;
            }
            (vma.start.0, vma.end.0, vma.prot)
        };
        let len = len.min(span_within(va.0, stride, len, vma_start, vma_end));
        let free0 = self.alloc.free_frames();
        let max_n = if self.swap_enabled {
            if free0 < self.low_watermark {
                return None;
            }
            free0.min(free0 - self.low_watermark + 1)
        } else {
            free0
        };
        let len = len.min(max_n);
        if len < 2 {
            return None;
        }
        let span = self
            .mmu
            .translate_miss_run(&self.pt, root, asid, va, stride, len)?;
        // Committed: everything below is infallible. Per page, the
        // interpreter's sequence is: two failing translates (each one
        // TLB-aging lookup and one full-depth walk), the fault-handler
        // entry charges, a buddy allocation + zero, the page-table
        // install, the `struct page` update, the TLB fill of the
        // walked (pre-A/D) flags, and the data access itself. State
        // writes happen per page below; charges land once, after.
        let walk_flags = pte_for(prot);
        let leaf_flags = if write {
            // `map` writes the PTE, then `mark_accessed` sets A/D in
            // place charge-free — fused into one leaf write here.
            walk_flags.union(PteFlags::ACCESSED).union(PteFlags::DIRTY)
        } else {
            walk_flags.union(PteFlags::ACCESSED)
        };
        let refs = self.mmu.walk_mode.refs(PT_LEVELS);
        let traced = self.machine.traced();
        let (ns_fixed, ns_split, ns_node) = if traced {
            let u = |k: CostKind| self.machine.cost.unit(k);
            (
                2 * refs * u(CostKind::PtwLevelRef)
                    + u(CostKind::FaultTrap)
                    + u(CostKind::FaultHandlerBase)
                    + u(CostKind::VmaFind)
                    + u(CostKind::BuddyAlloc)
                    + u(CostKind::ZeroPageDram)
                    + u(CostKind::PteWrite)
                    + u(CostKind::PageMetaUpdate)
                    + u(CostKind::TlbFill)
                    + if write {
                        u(CostKind::MemWriteDram)
                    } else {
                        u(CostKind::MemReadDram)
                    },
                u(CostKind::BuddyLevel),
                u(CostKind::PtNodeAlloc) + u(CostKind::PteWrite),
            )
        } else {
            (0, 0, 0)
        };
        let swap_on = self.swap_enabled;
        let mut at = va.0;
        let mut idx = 0u64;
        let mut last_page = va;
        let mut nodes_total = 0u64;
        // Latency grouping: consecutive pages with equal (splits,
        // nodes-created) cost the same, so they compress into one
        // ledger record — scalar accumulators only, no host heap.
        let mut grp = (u32::MAX, u64::MAX);
        let (mut grp_ns, mut grp_cnt, mut recorded) = (0u64, 0u64, 0u64);
        let BaselineKernel {
            machine,
            pt,
            mmu,
            alloc,
            meta,
            lru,
            ..
        } = self;
        alloc
            .alloc_run_with(machine, span, |m, frame, splits| {
                let a = VirtAddr(at);
                let page = a.page().base();
                m.phys.zero_frames(frame, 1);
                let nodes = pt
                    .map_uncharged(root, page, frame, PageSize::Base, leaf_flags)
                    .expect("miss prover guaranteed empty slots");
                nodes_total += nodes;
                let pm = meta.get_mut(frame);
                pm.mapcount = 1;
                pm.rmap.push((pid, page));
                pm.set(PageFlag::Swapbacked);
                pm.set(PageFlag::Lru);
                pm.set(PageFlag::Uptodate);
                if swap_on {
                    lru.insert(frame);
                }
                // Two failing lookups age the whole TLB before the
                // fill's own tick stamps the new entry.
                let tlb = mmu.tlb_mut();
                tlb.advance_ticks(2);
                tlb.insert(asid, a, frame, PageSize::Base, walk_flags);
                if write {
                    let pa = PhysAddr(frame.base().0 + (at & (PAGE_SIZE - 1)));
                    m.phys.write_u64(pa, first_value + idx);
                }
                if traced {
                    let key = (splits, nodes);
                    if key == grp {
                        grp_cnt += 1;
                    } else {
                        if grp_cnt > 0 {
                            m.op_record_n(OpKind::AccessFault, MECH, grp_ns, grp_cnt);
                            recorded += grp_ns * grp_cnt;
                        }
                        grp = key;
                        grp_cnt = 1;
                        grp_ns = ns_fixed + u64::from(splits) * ns_split + nodes * ns_node;
                    }
                }
                last_page = page;
                idx += 1;
                at = at.wrapping_add_signed(stride);
            })
            .expect("span clamped to free frames");
        if traced && grp_cnt > 0 {
            machine.op_record_n(OpKind::AccessFault, MECH, grp_ns, grp_cnt);
            recorded += grp_ns * grp_cnt;
        }
        // Aggregate replay of the interpreter's per-fault charges (the
        // buddy charges landed inside `alloc_run_with`).
        machine.perf.tlb_misses += 2 * span;
        machine.perf.page_walks += 2 * span;
        machine.charge_opn(CostKind::PtwLevelRef, 2 * span * refs);
        machine.charge_opn(CostKind::FaultTrap, span);
        machine.charge_opn(CostKind::FaultHandlerBase, span);
        machine.charge_opn(CostKind::VmaFind, span);
        machine.perf.minor_faults += span;
        machine.charge_zero_fg(MemTier::Dram, span * PAGE_SIZE);
        if nodes_total > 0 {
            machine.charge_opn(CostKind::PtNodeAlloc, nodes_total);
            machine.perf.pt_nodes_alloced += nodes_total;
        }
        machine.charge_opn(CostKind::PteWrite, span + nodes_total);
        machine.perf.pte_writes += span + nodes_total;
        machine.charge_opn(CostKind::PageMetaUpdate, span);
        machine.perf.page_meta_updates += span;
        machine.charge_opn(CostKind::TlbFill, span);
        if write {
            machine.perf.stores += span;
            machine.charge_opn(CostKind::MemWriteDram, span);
        } else {
            machine.perf.loads += span;
            machine.charge_opn(CostKind::MemReadDram, span);
        }
        mmu.replay_fault_run_walk_cache(pt, root, last_page);
        debug_assert!(
            !traced || recorded == machine.now().since(t0),
            "bulk-fault replay must conserve the clock"
        );
        machine.note_ffwd_run(span);
        self.poll_timeline();
        Some(span)
    }

    // ---- file I/O syscalls ---------------------------------------------------

    /// `read()`-style syscall: copy `buf.len()` bytes from a tmpfs
    /// file into the caller (kernel interposes on every byte — the
    /// path the paper contrasts with direct mapping, T-READ16K).
    pub fn file_read(&mut self, id: FileId, off: u64, buf: &mut [u8]) -> Result<(), VmError> {
        self.machine.charge_syscall();
        self.machine.charge_kind(CostKind::FileIoFixed);
        self.tmpfs
            .read(&mut self.machine, id, off, buf)
            .map_err(VmError::from)
    }

    /// `write()`-style syscall into a tmpfs file.
    pub fn file_write(&mut self, id: FileId, off: u64, data: &[u8]) -> Result<(), VmError> {
        self.machine.charge_syscall();
        self.machine.charge_kind(CostKind::FileIoFixed);
        let (machine, tmpfs, alloc) = (&mut self.machine, &mut self.tmpfs, &mut self.alloc);
        tmpfs
            .write(machine, alloc, id, off, data)
            .map_err(VmError::from)
    }

    /// `fallocate()`-style syscall: preallocate the pages backing
    /// `[off, off+bytes)` of a tmpfs file without writing data.
    pub fn file_allocate(&mut self, id: FileId, off: u64, bytes: u64) -> Result<(), VmError> {
        self.machine.charge_syscall();
        self.machine.charge_kind(CostKind::FileIoFixed);
        let (machine, tmpfs, alloc) = (&mut self.machine, &mut self.tmpfs, &mut self.alloc);
        tmpfs
            .allocate_range(machine, alloc, id, off, bytes)
            .map_err(VmError::from)
    }

    /// Create a tmpfs file sized `bytes` (sparse).
    pub fn create_file(&mut self, name: &str, bytes: u64) -> Result<FileId, VmError> {
        self.machine.charge_syscall();
        let (machine, tmpfs, alloc) = (&mut self.machine, &mut self.tmpfs, &mut self.alloc);
        let id = tmpfs.create(machine, name).map_err(VmError::from)?;
        tmpfs
            .set_size(machine, alloc, id, bytes)
            .map_err(VmError::from)?;
        Ok(id)
    }

    // ---- pinning -------------------------------------------------------------

    /// Pin `[va, va+len)` for device access: faults everything in and
    /// marks each page unevictable. Linear per-page cost (the paper's
    /// "expensive per-page operations to ensure data remains in
    /// place").
    pub fn pin_range(&mut self, pid: Pid, va: VirtAddr, len: u64) -> Result<(), VmError> {
        self.machine.charge_syscall();
        let mut page_va = va;
        while page_va < va + o1_hw::round_up_pages(len) {
            let pa = self.resolve(pid, page_va, Access::Read)?;
            self.machine.charge_kind(CostKind::PinPage);
            let meta = self.meta.get_mut(pa.frame());
            meta.pins += 1;
            meta.set(PageFlag::Mlocked);
            meta.set(PageFlag::Unevictable);
            page_va += PAGE_SIZE;
        }
        Ok(())
    }

    /// Undo [`pin_range`](Self::pin_range).
    pub fn unpin_range(&mut self, pid: Pid, va: VirtAddr, len: u64) -> Result<(), VmError> {
        self.machine.charge_syscall();
        let mut page_va = va;
        while page_va < va + o1_hw::round_up_pages(len) {
            let pa = self.resolve(pid, page_va, Access::Read)?;
            self.machine.charge_kind(CostKind::PinPage);
            let meta = self.meta.get_mut(pa.frame());
            meta.pins = meta.pins.saturating_sub(1);
            if meta.pins == 0 {
                meta.clear(PageFlag::Mlocked);
                meta.clear(PageFlag::Unevictable);
            }
            page_va += PAGE_SIZE;
        }
        Ok(())
    }
}

impl BaselineKernel {
    /// Device DMA from `[va, va+len)`. Pages the caller pinned stream
    /// at device rate; unpinned pages go through the faulting IOMMU
    /// path — "even devices that support page faults through an IOMMU
    /// incur high penalties" (§3.1). Returns pages transferred.
    pub fn dma_transfer(
        &mut self,
        pid: Pid,
        va: VirtAddr,
        len: u64,
        dma: &mut o1_hw::DmaEngine,
    ) -> Result<u64, VmError> {
        self.machine.charge_syscall();
        let mut pages = 0;
        let mut at = va;
        while at < va + o1_hw::round_up_pages(len.max(1)) {
            let pa = self.resolve(pid, at, Access::Read)?;
            let pinned = self.meta.get(pa.frame()).pins > 0;
            let mode = if pinned {
                o1_hw::DmaMode::Pinned
            } else {
                o1_hw::DmaMode::IommuFaulting
            };
            pages += dma.transfer(&mut self.machine, pa, PAGE_SIZE, mode);
            at += PAGE_SIZE;
        }
        Ok(pages)
    }
}

/// PTE flags for a protection level.
fn pte_for(prot: Prot) -> PteFlags {
    match prot {
        Prot::Read => PteFlags::user_ro(),
        Prot::ReadWrite => PteFlags::user_rw(),
        Prot::ReadExec => PteFlags::user_ro().union(PteFlags::EXEC),
    }
}

/// COW marker for a private mapping that will become writable.
fn cow_bit(prot: Prot) -> PteFlags {
    if prot.writable() {
        PteFlags::COW
    } else {
        PteFlags::empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kernel() -> BaselineKernel {
        BaselineKernel::builder().dram(64 << 20).build()
    }

    #[test]
    fn process_table_exhaustion_is_an_error() {
        let mut k = kernel();
        let first = k.create_process().unwrap();
        // Drain the remaining 16-bit ASID space without the expense of
        // booting 65534 processes.
        while k.asids.alloc().is_some() {}
        assert_eq!(k.create_process(), Err(VmError::ProcessLimit));
        assert_eq!(k.fork(first), Err(VmError::ProcessLimit));
        // Destroying a process recycles its ASID: creation works again
        // (the recycled grant is flushed — PCID rollover semantics).
        k.destroy_process(first).unwrap();
        let again = k.create_process().unwrap();
        assert!(again > first, "pids stay monotonic across recycling");
        assert_eq!(k.create_process(), Err(VmError::ProcessLimit));
    }

    #[test]
    fn anon_demand_mapping_faults_per_page() {
        let mut k = kernel();
        let pid = k.create_process().unwrap();
        let va = k
            .mmap(
                pid,
                16 * PAGE_SIZE,
                Prot::ReadWrite,
                Backing::Anon,
                MapFlags::private(),
            )
            .unwrap();
        assert_eq!(k.machine().perf.minor_faults, 0);
        for i in 0..16 {
            k.store(pid, va + i * PAGE_SIZE, i).unwrap();
        }
        assert_eq!(k.machine().perf.minor_faults, 16);
        for i in 0..16 {
            assert_eq!(k.load(pid, va + i * PAGE_SIZE).unwrap(), i);
        }
        assert_eq!(k.machine().perf.minor_faults, 16, "no faults on re-access");
    }

    #[test]
    fn populate_mapping_never_faults() {
        let mut k = kernel();
        let pid = k.create_process().unwrap();
        let va = k
            .mmap(
                pid,
                16 * PAGE_SIZE,
                Prot::ReadWrite,
                Backing::Anon,
                MapFlags::private_populate(),
            )
            .unwrap();
        for i in 0..16 {
            k.store(pid, va + i * PAGE_SIZE, i).unwrap();
        }
        assert_eq!(k.machine().perf.minor_faults, 0);
    }

    #[test]
    fn mmap_private_is_constant_populate_is_linear() {
        let mut k = kernel();
        let pid = k.create_process().unwrap();
        let t = |k: &mut BaselineKernel, pages: u64, populate: bool| {
            let flags = if populate {
                MapFlags::private_populate()
            } else {
                MapFlags::private()
            };
            let t0 = k.machine().now();
            k.mmap(
                pid,
                pages * PAGE_SIZE,
                Prot::ReadWrite,
                Backing::Anon,
                flags,
            )
            .unwrap();
            k.machine().now().since(t0)
        };
        let private_small = t(&mut k, 4, false);
        let private_large = t(&mut k, 1024, false);
        assert_eq!(private_small, private_large, "MAP_PRIVATE is O(1)");
        let pop_small = t(&mut k, 64, true);
        let pop_large = t(&mut k, 1024, true);
        assert!(
            pop_large > 10 * pop_small,
            "MAP_POPULATE is linear: {pop_small} vs {pop_large}"
        );
    }

    #[test]
    fn unmapped_access_is_sigsegv() {
        let mut k = kernel();
        let pid = k.create_process().unwrap();
        assert_eq!(k.load(pid, VirtAddr(0x123000)), Err(VmError::BadAddress));
        assert_eq!(k.machine().perf.prot_faults, 1);
    }

    #[test]
    fn write_to_readonly_is_protection_fault() {
        let mut k = kernel();
        let pid = k.create_process().unwrap();
        let va = k
            .mmap(
                pid,
                PAGE_SIZE,
                Prot::Read,
                Backing::Anon,
                MapFlags::private_populate(),
            )
            .unwrap();
        assert_eq!(k.load(pid, va).unwrap(), 0);
        assert_eq!(k.store(pid, va, 1), Err(VmError::ProtectionFault));
    }

    #[test]
    fn munmap_frees_frames() {
        let mut k = kernel();
        let pid = k.create_process().unwrap();
        let before = k.free_frames();
        let va = k
            .mmap(
                pid,
                64 * PAGE_SIZE,
                Prot::ReadWrite,
                Backing::Anon,
                MapFlags::private_populate(),
            )
            .unwrap();
        assert_eq!(k.free_frames(), before - 64);
        k.munmap(pid, va, 64 * PAGE_SIZE).unwrap();
        assert_eq!(k.free_frames(), before);
        assert_eq!(k.load(pid, va), Err(VmError::BadAddress));
    }

    #[test]
    fn partial_munmap_splits_vma() {
        let mut k = kernel();
        let pid = k.create_process().unwrap();
        let va = k
            .mmap(
                pid,
                8 * PAGE_SIZE,
                Prot::ReadWrite,
                Backing::Anon,
                MapFlags::private_populate(),
            )
            .unwrap();
        k.munmap(pid, va + 2 * PAGE_SIZE, 2 * PAGE_SIZE).unwrap();
        assert_eq!(k.vma_count(pid).unwrap(), 2);
        assert!(k.load(pid, va).is_ok());
        assert_eq!(k.load(pid, va + 2 * PAGE_SIZE), Err(VmError::BadAddress));
        assert!(k.load(pid, va + 4 * PAGE_SIZE).is_ok());
    }

    #[test]
    fn file_shared_mapping_reads_file_data() {
        let mut k = kernel();
        let pid = k.create_process().unwrap();
        let id = k.create_file("data", 4 * PAGE_SIZE).unwrap();
        k.file_write(id, 0, &42u64.to_le_bytes()).unwrap();
        let va = k
            .mmap(
                pid,
                4 * PAGE_SIZE,
                Prot::ReadWrite,
                Backing::File { id, offset: 0 },
                MapFlags::shared(),
            )
            .unwrap();
        assert_eq!(k.load(pid, va).unwrap(), 42);
        // Writes through the mapping are visible via read().
        k.store(pid, va + 8, 99).unwrap();
        let mut buf = [0u8; 8];
        k.file_read(id, 8, &mut buf).unwrap();
        assert_eq!(u64::from_le_bytes(buf), 99);
    }

    #[test]
    fn file_private_mapping_is_cow() {
        let mut k = kernel();
        let p1 = k.create_process().unwrap();
        let p2 = k.create_process().unwrap();
        let id = k.create_file("shared", PAGE_SIZE).unwrap();
        k.file_write(id, 0, &7u64.to_le_bytes()).unwrap();
        let f = Backing::File { id, offset: 0 };
        let va1 = k
            .mmap(p1, PAGE_SIZE, Prot::ReadWrite, f, MapFlags::private())
            .unwrap();
        let va2 = k
            .mmap(p2, PAGE_SIZE, Prot::ReadWrite, f, MapFlags::private())
            .unwrap();
        assert_eq!(k.load(p1, va1).unwrap(), 7);
        assert_eq!(k.load(p2, va2).unwrap(), 7);
        // P1 writes privately; P2 and the file are unaffected.
        k.store(p1, va1, 100).unwrap();
        assert_eq!(k.load(p1, va1).unwrap(), 100);
        assert_eq!(k.load(p2, va2).unwrap(), 7);
        let mut buf = [0u8; 8];
        k.file_read(id, 0, &mut buf).unwrap();
        assert_eq!(u64::from_le_bytes(buf), 7);
    }

    #[test]
    fn fork_is_copy_on_write() {
        let mut k = kernel();
        let parent = k.create_process().unwrap();
        let va = k
            .mmap(
                pid_of(parent),
                4 * PAGE_SIZE,
                Prot::ReadWrite,
                Backing::Anon,
                MapFlags::private(),
            )
            .unwrap();
        for i in 0..4 {
            k.store(parent, va + i * PAGE_SIZE, 10 + i).unwrap();
        }
        let frames_before = k.free_frames();
        let child = k.fork(parent).unwrap();
        // Fork itself copies nothing.
        assert_eq!(k.free_frames(), frames_before);
        for i in 0..4 {
            assert_eq!(k.load(child, va + i * PAGE_SIZE).unwrap(), 10 + i);
        }
        // Child write triggers a copy; parent unaffected.
        k.store(child, va, 999).unwrap();
        assert_eq!(k.free_frames(), frames_before - 1);
        assert_eq!(k.load(parent, va).unwrap(), 10);
        assert_eq!(k.load(child, va).unwrap(), 999);
        // Parent write to another page also copies... and after the
        // copy the sole owner is upgraded in place.
        k.store(parent, va + PAGE_SIZE, 555).unwrap();
        assert_eq!(k.load(child, va + PAGE_SIZE).unwrap(), 11);
    }

    fn pid_of(p: Pid) -> Pid {
        p
    }

    #[test]
    fn destroy_process_releases_everything() {
        let mut k = kernel();
        let before_frames = k.free_frames();
        let before_nodes = k.pt_metadata_bytes();
        let pid = k.create_process().unwrap();
        k.mmap(
            pid,
            32 * PAGE_SIZE,
            Prot::ReadWrite,
            Backing::Anon,
            MapFlags::private_populate(),
        )
        .unwrap();
        k.destroy_process(pid).unwrap();
        assert_eq!(k.free_frames(), before_frames);
        assert_eq!(k.pt_metadata_bytes(), before_nodes);
        assert_eq!(k.load(pid, VirtAddr(MMAP_BASE)), Err(VmError::NoProcess));
    }

    #[test]
    fn reclaim_swaps_out_and_faults_back() {
        let mut k = BaselineKernel::new(BaselineConfig {
            dram_bytes: 96 * PAGE_SIZE,
            reclaim: ReclaimPolicy::Clock,
            low_watermark_frames: 8,
            swap_enabled: true,
            thp: ThpMode::Never,
            fault_around: 1,
        });
        let pid = k.create_process().unwrap();
        let va = k
            .mmap(
                pid,
                200 * PAGE_SIZE,
                Prot::ReadWrite,
                Backing::Anon,
                MapFlags::private(),
            )
            .unwrap();
        // Touch more pages than physical memory holds.
        for i in 0..180u64 {
            k.store(pid, va + i * PAGE_SIZE, 1000 + i).unwrap();
        }
        assert!(
            k.machine().perf.pages_swapped_out > 0,
            "pressure forced swap"
        );
        // All data survives (major faults bring it back).
        for i in 0..180u64 {
            assert_eq!(
                k.load(pid, va + i * PAGE_SIZE).unwrap(),
                1000 + i,
                "page {i}"
            );
        }
        assert!(k.machine().perf.major_faults > 0);
        assert!(k.machine().perf.reclaim_scanned > 0);
    }

    #[test]
    fn pinned_pages_survive_pressure() {
        let mut k = BaselineKernel::new(BaselineConfig {
            dram_bytes: 64 * PAGE_SIZE,
            reclaim: ReclaimPolicy::Clock,
            low_watermark_frames: 4,
            swap_enabled: true,
            thp: ThpMode::Never,
            fault_around: 1,
        });
        let pid = k.create_process().unwrap();
        let va = k
            .mmap(
                pid,
                100 * PAGE_SIZE,
                Prot::ReadWrite,
                Backing::Anon,
                MapFlags::private(),
            )
            .unwrap();
        k.store(pid, va, 42).unwrap();
        k.pin_range(pid, va, PAGE_SIZE).unwrap();
        let swapped_before = k.machine().perf.pages_swapped_out;
        for i in 1..100u64 {
            k.store(pid, va + i * PAGE_SIZE, i).unwrap();
        }
        assert!(k.machine().perf.pages_swapped_out > swapped_before);
        // The pinned page never left memory: reading it causes no
        // major fault.
        let major_before = k.machine().perf.major_faults;
        assert_eq!(k.load(pid, va).unwrap(), 42);
        assert_eq!(k.machine().perf.major_faults, major_before);
    }

    #[test]
    fn mprotect_changes_permissions() {
        let mut k = kernel();
        let pid = k.create_process().unwrap();
        let va = k
            .mmap(
                pid,
                4 * PAGE_SIZE,
                Prot::ReadWrite,
                Backing::Anon,
                MapFlags::private_populate(),
            )
            .unwrap();
        k.store(pid, va, 5).unwrap();
        k.mprotect(pid, va, PAGE_SIZE, Prot::Read).unwrap();
        assert_eq!(k.store(pid, va, 6), Err(VmError::ProtectionFault));
        assert_eq!(k.load(pid, va).unwrap(), 5);
        k.mprotect(pid, va, PAGE_SIZE, Prot::ReadWrite).unwrap();
        k.store(pid, va, 6).unwrap();
        assert_eq!(k.load(pid, va).unwrap(), 6);
    }

    #[test]
    fn madvise_dontneed_drops_and_rezeros() {
        let mut k = kernel();
        let pid = k.create_process().unwrap();
        let va = k
            .mmap(
                pid,
                2 * PAGE_SIZE,
                Prot::ReadWrite,
                Backing::Anon,
                MapFlags::private(),
            )
            .unwrap();
        k.store(pid, va, 77).unwrap();
        let free_before = k.free_frames();
        k.madvise_dontneed(pid, va, PAGE_SIZE).unwrap();
        assert_eq!(k.free_frames(), free_before + 1);
        // Next touch demand-zero-faults a fresh page.
        assert_eq!(k.load(pid, va).unwrap(), 0);
    }

    #[test]
    fn file_read_syscall_charges_copies() {
        let mut k = kernel();
        let id = k.create_file("f", 16 * 1024).unwrap();
        k.file_write(id, 0, &[1u8; 16 * 1024]).unwrap();
        let mut buf = vec![0u8; 16 * 1024];
        let t0 = k.machine().now();
        k.file_read(id, 0, &mut buf).unwrap();
        let ns = k.machine().now().since(t0);
        let c = &k.machine().cost;
        assert_eq!(
            ns,
            c.syscall + c.file_io_fixed + 4 * c.copy_page,
            "16KB = 4 page copies"
        );
    }

    #[test]
    fn launch_process_segments() {
        let mut k = kernel();
        let pid = k
            .launch_process(1 << 20, 1 << 20, 256 * 1024, false)
            .unwrap();
        assert_eq!(k.vma_count(pid).unwrap(), 3, "code/heap/stack distinct");
        k.destroy_process(pid).unwrap();
    }

    #[test]
    fn oom_without_swap_errors() {
        let mut k = BaselineKernel::new(BaselineConfig {
            dram_bytes: 16 * PAGE_SIZE,
            reclaim: ReclaimPolicy::Clock,
            low_watermark_frames: 0,
            swap_enabled: false,
            thp: ThpMode::Never,
            fault_around: 1,
        });
        let pid = k.create_process().unwrap();
        let va = k
            .mmap(
                pid,
                64 * PAGE_SIZE,
                Prot::ReadWrite,
                Backing::Anon,
                MapFlags::private(),
            )
            .unwrap();
        let mut failed = false;
        for i in 0..64u64 {
            if k.store(pid, va + i * PAGE_SIZE, i).is_err() {
                failed = true;
                break;
            }
        }
        assert!(failed, "must OOM without swap");
    }

    fn thp_kernel(mode: ThpMode) -> BaselineKernel {
        BaselineKernel::new(BaselineConfig {
            dram_bytes: 64 << 20,
            reclaim: ReclaimPolicy::Clock,
            low_watermark_frames: 0,
            swap_enabled: false,
            thp: mode,
            fault_around: 1,
        })
    }

    #[test]
    fn thp_populates_huge_pages_in_one_fault() {
        let mut k = thp_kernel(ThpMode::Aligned2M);
        let pid = k.create_process().unwrap();
        let va = k
            .mmap(
                pid,
                4 * HUGE_2M,
                Prot::ReadWrite,
                Backing::Anon,
                MapFlags::private(),
            )
            .unwrap();
        assert!(va.is_aligned(HUGE_2M), "huge-eligible VMAs are aligned");
        // Touch every page of 8 MiB: only 4 faults (one per huge page).
        for p in 0..(4 * 512u64) {
            k.store(pid, va + p * PAGE_SIZE, p).unwrap();
        }
        assert_eq!(k.machine().perf.minor_faults, 4, "one fault per 2 MiB");
        for p in 0..(4 * 512u64) {
            assert_eq!(k.load(pid, va + p * PAGE_SIZE).unwrap(), p);
        }
        let free_before = k.free_frames();
        k.munmap(pid, va, 4 * HUGE_2M).unwrap();
        assert_eq!(k.free_frames(), free_before + 4 * 512);
    }

    #[test]
    fn thp_falls_back_for_small_mappings() {
        let mut k = thp_kernel(ThpMode::Aligned2M);
        let pid = k.create_process().unwrap();
        let va = k
            .mmap(
                pid,
                16 * PAGE_SIZE,
                Prot::ReadWrite,
                Backing::Anon,
                MapFlags::private(),
            )
            .unwrap();
        for p in 0..16u64 {
            k.store(pid, va + p * PAGE_SIZE, p).unwrap();
        }
        assert_eq!(k.machine().perf.minor_faults, 16, "too small for huge");
    }

    #[test]
    fn greedy_huge_trades_space_for_time() {
        // The paper's §1 thought experiment: 300 KB requested, 2 MiB
        // spent, far fewer per-page operations.
        let mut base = thp_kernel(ThpMode::Never);
        let mut greedy = thp_kernel(ThpMode::GreedyHuge);
        let req = 300 << 10; // 300 KB
        let pages = o1_hw::pages_for(req);
        let mut times = Vec::new();
        for k in [&mut base, &mut greedy] {
            let pid = k.create_process().unwrap();
            let t0 = k.machine().now();
            let va = k
                .mmap(
                    pid,
                    req,
                    Prot::ReadWrite,
                    Backing::Anon,
                    MapFlags::private(),
                )
                .unwrap();
            for p in 0..pages {
                k.store(pid, va + p * PAGE_SIZE, p).unwrap();
            }
            times.push(k.machine().now().since(t0));
        }
        // Huge pages eliminate 73 of 74 faults, but the win saturates
        // near ~1.7x because *zeroing* the 2 MiB stays linear — the
        // very interaction that motivates the paper's O(1)-erase
        // section (quantified in the A-THP ablation).
        assert!(
            times[1] * 10 < times[0] * 7,
            "greedy huge saves time: {} vs {}",
            times[0],
            times[1]
        );
        assert_eq!(base.space_overhead_bytes(), 0);
        assert_eq!(
            greedy.space_overhead_bytes(),
            HUGE_2M - o1_hw::round_up_pages(req),
            "the wasted space is accounted"
        );
    }

    #[test]
    fn partial_munmap_splits_huge_in_place() {
        let mut k = thp_kernel(ThpMode::Aligned2M);
        let pid = k.create_process().unwrap();
        let va = k
            .mmap(
                pid,
                HUGE_2M,
                Prot::ReadWrite,
                Backing::Anon,
                MapFlags::private_populate(),
            )
            .unwrap();
        for p in 0..512u64 {
            k.store(pid, va + p * PAGE_SIZE, 7000 + p).unwrap();
        }
        assert_eq!(k.machine().perf.minor_faults, 0);
        // Unmap the middle quarter: the huge page splits, data in the
        // kept parts survives (in place, no copying).
        let free_before = k.free_frames();
        k.munmap(pid, va + 128 * PAGE_SIZE, 128 * PAGE_SIZE)
            .unwrap();
        for p in 0..128u64 {
            assert_eq!(k.load(pid, va + p * PAGE_SIZE).unwrap(), 7000 + p);
        }
        for p in 256..512u64 {
            assert_eq!(k.load(pid, va + p * PAGE_SIZE).unwrap(), 7000 + p);
        }
        assert_eq!(k.load(pid, va + 128 * PAGE_SIZE), Err(VmError::BadAddress));
        // The block is only partially free: no frames returned yet
        // (fragments pin the order-9 block).
        assert_eq!(k.free_frames(), free_before);
        // Freeing the rest returns the whole block at once.
        k.munmap(pid, va, 128 * PAGE_SIZE).unwrap();
        k.munmap(pid, va + 256 * PAGE_SIZE, 256 * PAGE_SIZE)
            .unwrap();
        assert_eq!(k.free_frames(), free_before + 512);
    }

    #[test]
    fn fork_of_huge_mappings_splits_then_cows() {
        let mut k = thp_kernel(ThpMode::Aligned2M);
        let parent = k.create_process().unwrap();
        let va = k
            .mmap(
                parent,
                HUGE_2M,
                Prot::ReadWrite,
                Backing::Anon,
                MapFlags::private_populate(),
            )
            .unwrap();
        k.store(parent, va, 111).unwrap();
        let child = k.fork(parent).unwrap();
        assert_eq!(k.load(child, va).unwrap(), 111);
        k.store(child, va, 222).unwrap();
        assert_eq!(k.load(parent, va).unwrap(), 111);
        assert_eq!(k.load(child, va).unwrap(), 222);
    }

    #[test]
    fn fault_around_cuts_fault_count() {
        let mut k = BaselineKernel::new(BaselineConfig {
            dram_bytes: 64 << 20,
            reclaim: ReclaimPolicy::Clock,
            low_watermark_frames: 0,
            swap_enabled: false,
            thp: ThpMode::Never,
            fault_around: 16,
        });
        let pid = k.create_process().unwrap();
        let va = k
            .mmap(
                pid,
                256 * PAGE_SIZE,
                Prot::ReadWrite,
                Backing::Anon,
                MapFlags::private(),
            )
            .unwrap();
        for p in 0..256u64 {
            k.store(pid, va + p * PAGE_SIZE, p).unwrap();
        }
        assert_eq!(
            k.machine().perf.minor_faults,
            256 / 16,
            "one trap per 16 pages"
        );
        for p in 0..256u64 {
            assert_eq!(k.load(pid, va + p * PAGE_SIZE).unwrap(), p);
        }
    }

    #[test]
    fn stack_grows_down_on_demand() {
        let mut k = kernel();
        let pid = k.create_process().unwrap();
        let top = k.map_stack(pid, 16 * PAGE_SIZE, 1 << 20).unwrap();
        // Initial extent is usable.
        k.store(pid, top - 8u64, 1).unwrap();
        k.store(pid, top - 16 * PAGE_SIZE, 2).unwrap();
        // Push below the initial extent: grows transparently.
        let deep = top - 200 * PAGE_SIZE;
        k.store(pid, deep, 3).unwrap();
        assert_eq!(k.load(pid, deep).unwrap(), 3);
        // All the way to the limit works...
        let deepest = top - (1u64 << 20);
        k.store(pid, deepest, 4).unwrap();
        // ...but the guard page below the limit faults.
        assert_eq!(
            k.store(pid, deepest - PAGE_SIZE, 5),
            Err(VmError::BadAddress),
            "guard page catches overflow"
        );
    }

    #[test]
    fn stack_growth_does_not_swallow_neighbours() {
        let mut k = kernel();
        let pid = k.create_process().unwrap();
        let top = k.map_stack(pid, PAGE_SIZE, 64 * PAGE_SIZE).unwrap();
        // A far-away unmapped address is still a SIGSEGV.
        assert_eq!(k.load(pid, VirtAddr(0xdead_0000)), Err(VmError::BadAddress));
        // Ordinary VMAs never grow.
        let va = k
            .mmap(
                pid,
                4 * PAGE_SIZE,
                Prot::ReadWrite,
                Backing::Anon,
                MapFlags::private(),
            )
            .unwrap();
        assert_eq!(
            k.load(pid, va - PAGE_SIZE),
            Err(VmError::BadAddress),
            "guard gap below a normal mapping"
        );
        let _ = top;
    }

    #[test]
    fn mprotect_keeps_interior_huge_pages() {
        let mut k = thp_kernel(ThpMode::Aligned2M);
        let pid = k.create_process().unwrap();
        let va = k
            .mmap(
                pid,
                2 * HUGE_2M,
                Prot::ReadWrite,
                Backing::Anon,
                MapFlags::private_populate(),
            )
            .unwrap();
        k.store(pid, va, 5).unwrap();
        // Whole-huge-page mprotect: stays huge, becomes read-only.
        k.mprotect(pid, va, HUGE_2M, Prot::Read).unwrap();
        assert_eq!(k.store(pid, va, 6), Err(VmError::ProtectionFault));
        assert_eq!(k.load(pid, va).unwrap(), 5);
        k.mprotect(pid, va, HUGE_2M, Prot::ReadWrite).unwrap();
        k.store(pid, va, 6).unwrap();
        // Sub-huge mprotect forces a split but keeps data.
        k.store(pid, va + HUGE_2M, 77).unwrap();
        k.mprotect(pid, va + HUGE_2M, 4 * PAGE_SIZE, Prot::Read)
            .unwrap();
        assert_eq!(k.load(pid, va + HUGE_2M).unwrap(), 77);
        assert_eq!(
            k.store(pid, va + HUGE_2M, 78),
            Err(VmError::ProtectionFault)
        );
        assert!(k.store(pid, va + HUGE_2M + 4 * PAGE_SIZE, 79).is_ok());
    }
}
