//! Dense, arena-backed process table shared by both kernels.
//!
//! Pids are issued monotonically and never reused (the 16-bit ASID
//! space bounds them to 65536 ever), so `pid → process` is a dense
//! mapping: a `Vec` of handles into a generational [`Arena`] replaces
//! the old `HashMap<Pid, Proc>`. A lookup — one per simulated kernel
//! call — is two bounds-checked indexes instead of a SipHash probe.
//!
//! The arena's generations keep destroyed pids *stale*: a `Pid` held
//! across `destroy_process` misses (`VmError::NoProcess` at the
//! caller) even if its slot has been recycled for a newer process.

use o1_hw::{Arena, Handle};

use crate::types::Pid;

/// Process table keyed by [`Pid`].
#[derive(Debug, Default)]
pub struct ProcTable<P> {
    arena: Arena<P>,
    /// `pid.0 → handle`; `None` for never-issued or destroyed pids.
    by_pid: Vec<Option<Handle>>,
}

impl<P> ProcTable<P> {
    /// Empty table.
    pub fn new() -> ProcTable<P> {
        ProcTable {
            arena: Arena::new(),
            by_pid: Vec::new(),
        }
    }

    /// Live processes.
    pub fn len(&self) -> usize {
        self.arena.len()
    }

    /// True if no process is live.
    pub fn is_empty(&self) -> bool {
        self.arena.is_empty()
    }

    #[inline]
    fn handle(&self, pid: Pid) -> Option<Handle> {
        *self.by_pid.get(pid.0 as usize)?
    }

    /// Borrow the process for `pid`, if live.
    #[inline]
    pub fn get(&self, pid: Pid) -> Option<&P> {
        self.arena.get(self.handle(pid)?)
    }

    /// Mutably borrow the process for `pid`, if live.
    #[inline]
    pub fn get_mut(&mut self, pid: Pid) -> Option<&mut P> {
        let h = self.handle(pid)?;
        self.arena.get_mut(h)
    }

    /// Register a newly created process under `pid`.
    ///
    /// # Panics
    /// Panics if `pid` is already live (pids are never reissued).
    pub fn insert(&mut self, pid: Pid, proc: P) {
        assert!(self.get(pid).is_none(), "pid {pid:?} already live");
        let h = self.arena.insert(proc);
        let idx = pid.0 as usize;
        if idx >= self.by_pid.len() {
            self.by_pid.resize(idx + 1, None);
        }
        self.by_pid[idx] = Some(h);
    }

    /// Remove and return the process for `pid`. Its handle goes stale
    /// in the arena, so copies of the pid held elsewhere miss.
    pub fn remove(&mut self, pid: Pid) -> Option<P> {
        let h = self.by_pid.get_mut(pid.0 as usize)?.take()?;
        self.arena.remove(h)
    }

    /// Live pids in ascending order (deterministic).
    pub fn pids(&self) -> Vec<Pid> {
        self.by_pid
            .iter()
            .enumerate()
            .filter(|(_, h)| h.is_some())
            .map(|(i, _)| Pid(i as u32))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove() {
        let mut t = ProcTable::new();
        t.insert(Pid(1), "a");
        t.insert(Pid(2), "b");
        assert_eq!(t.len(), 2);
        assert_eq!(t.get(Pid(1)), Some(&"a"));
        assert_eq!(t.get_mut(Pid(2)), Some(&mut "b"));
        assert_eq!(t.get(Pid(3)), None);
        assert_eq!(t.remove(Pid(1)), Some("a"));
        assert_eq!(t.get(Pid(1)), None);
        assert_eq!(t.remove(Pid(1)), None);
        assert_eq!(t.pids(), vec![Pid(2)]);
    }

    #[test]
    fn destroyed_pid_stays_stale_after_slot_reuse() {
        let mut t = ProcTable::new();
        t.insert(Pid(1), 10);
        t.remove(Pid(1)).unwrap();
        // A later process reuses the arena slot, but the old pid must
        // keep missing.
        t.insert(Pid(2), 20);
        assert_eq!(t.get(Pid(1)), None);
        assert_eq!(t.get(Pid(2)), Some(&20));
    }

    #[test]
    fn pids_are_sorted() {
        let mut t = ProcTable::new();
        for id in [5u32, 1, 9, 3] {
            t.insert(Pid(id), id);
        }
        t.remove(Pid(9));
        assert_eq!(t.pids(), vec![Pid(1), Pid(3), Pid(5)]);
    }
}
