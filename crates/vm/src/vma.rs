//! Virtual memory areas and the per-process region map.
//!
//! Models Linux's VMA tree, including the merging of adjacent
//! compatible regions that the paper notes is lost when moving memory
//! management to files ("Linux merges adjacent memory regions when
//! possible... This reduces the size of internal metadata", §3.1).

use std::collections::BTreeMap;

use o1_hw::{VirtAddr, PAGE_SIZE};

use crate::types::{Backing, Prot};

/// One virtual memory area: a page-aligned, half-open range with
/// uniform protection and backing.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Vma {
    /// First byte (page-aligned).
    pub start: VirtAddr,
    /// One past the last byte (page-aligned).
    pub end: VirtAddr,
    /// Protection.
    pub prot: Prot,
    /// Anonymous or file-backed.
    pub backing: Backing,
    /// MAP_SHARED vs MAP_PRIVATE.
    pub shared: bool,
    /// mlock'd / pinned region.
    pub pinned: bool,
    /// For grow-down stacks: the lowest address the region may expand
    /// to on a fault just below `start`. `None` for ordinary VMAs.
    pub grow_limit: Option<VirtAddr>,
}

impl Vma {
    /// Length in bytes.
    #[inline]
    pub fn len(&self) -> u64 {
        self.end - self.start
    }

    /// Never true for a valid VMA (ranges are non-empty), provided for
    /// API completeness.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Number of pages covered.
    #[inline]
    pub fn pages(&self) -> u64 {
        self.len() / PAGE_SIZE
    }

    /// True if `va` lies inside.
    #[inline]
    pub fn contains(&self, va: VirtAddr) -> bool {
        self.start <= va && va < self.end
    }

    /// File offset corresponding to `va`, for file-backed VMAs.
    pub fn file_offset_of(&self, va: VirtAddr) -> Option<u64> {
        match self.backing {
            Backing::File { offset, .. } if self.contains(va) => Some(offset + (va - self.start)),
            _ => None,
        }
    }

    /// True if `self` (ending where `next` starts) can merge with it:
    /// same protection, sharing, pinning, and compatible backing
    /// (anon–anon, or same file with contiguous offsets).
    pub fn can_merge_with(&self, next: &Vma) -> bool {
        if self.end != next.start
            || self.prot != next.prot
            || self.shared != next.shared
            || self.pinned != next.pinned
            || self.grow_limit.is_some()
            || next.grow_limit.is_some()
        {
            return false;
        }
        match (self.backing, next.backing) {
            (Backing::Anon, Backing::Anon) => true,
            (Backing::File { id: a, offset: ao }, Backing::File { id: b, offset: bo }) => {
                a == b && ao + self.len() == bo
            }
            _ => false,
        }
    }
}

/// The per-process VMA map.
#[derive(Debug, Default)]
pub struct VmaMap {
    map: BTreeMap<u64, Vma>,
}

impl VmaMap {
    /// Empty map.
    pub fn new() -> VmaMap {
        VmaMap::default()
    }

    /// Number of VMAs (merging keeps this low).
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if there are no regions.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Total mapped bytes.
    pub fn mapped_bytes(&self) -> u64 {
        self.map.values().map(Vma::len).sum()
    }

    /// The first VMA starting strictly above `va` (for stack growth).
    pub fn next_above(&self, va: VirtAddr) -> Option<&Vma> {
        self.map.range(va.0 + 1..).next().map(|(_, v)| v)
    }

    /// Grow the VMA based at `old_start` downwards to `new_start`.
    ///
    /// # Panics
    /// Panics if no VMA starts at `old_start`, the new range overlaps
    /// a neighbour, or the VMA is not growable that far.
    pub fn grow_down(&mut self, old_start: VirtAddr, new_start: VirtAddr) {
        let v = self.map.remove(&old_start.0).expect("grow of unknown VMA");
        let limit = v.grow_limit.expect("grow of non-growable VMA");
        assert!(
            new_start >= limit && new_start < old_start,
            "bad growth target"
        );
        assert!(
            self.is_free(new_start, old_start - new_start),
            "growth collides with a neighbour"
        );
        self.map.insert(
            new_start.0,
            Vma {
                start: new_start,
                ..v
            },
        );
    }

    /// The VMA containing `va`.
    pub fn find(&self, va: VirtAddr) -> Option<&Vma> {
        self.map
            .range(..=va.0)
            .next_back()
            .map(|(_, v)| v)
            .filter(|v| v.contains(va))
    }

    /// True if `[start, start+len)` overlaps no existing VMA.
    pub fn is_free(&self, start: VirtAddr, len: u64) -> bool {
        let end = start.0 + len;
        if let Some((_, prev)) = self.map.range(..=start.0).next_back() {
            if prev.end.0 > start.0 {
                return false;
            }
        }
        self.map.range(start.0..end).next().is_none()
    }

    /// Lowest gap of at least `len` bytes starting at or above `min`.
    pub fn find_gap(&self, min: VirtAddr, len: u64) -> VirtAddr {
        let mut candidate = min.0;
        for v in self.map.values() {
            if v.end.0 <= candidate {
                continue;
            }
            if v.start.0 >= candidate + len {
                break;
            }
            candidate = v.end.0;
        }
        VirtAddr(candidate)
    }

    /// Insert a VMA, merging with compatible neighbours. Returns the
    /// start of the (possibly merged) region.
    ///
    /// # Panics
    /// Panics if the range overlaps an existing VMA or is not
    /// page-aligned and non-empty.
    pub fn insert(&mut self, mut vma: Vma) -> VirtAddr {
        assert!(vma.start < vma.end, "empty VMA");
        assert!(
            vma.start.is_aligned(PAGE_SIZE) && vma.end.is_aligned(PAGE_SIZE),
            "unaligned VMA {vma:?}"
        );
        assert!(
            self.is_free(vma.start, vma.len()),
            "VMA {vma:?} overlaps an existing region"
        );
        // Merge with predecessor.
        if let Some((&p, &prev)) = self.map.range(..vma.start.0).next_back() {
            if prev.can_merge_with(&vma) {
                self.map.remove(&p);
                vma = Vma {
                    start: prev.start,
                    backing: prev.backing,
                    ..vma
                };
            }
        }
        // Merge with successor.
        if let Some((&n, &next)) = self.map.range(vma.start.0..).next() {
            if vma.can_merge_with(&next) {
                self.map.remove(&n);
                vma.end = next.end;
            }
        }
        let start = vma.start;
        self.map.insert(start.0, vma);
        start
    }

    /// Remove `[start, start+len)`, splitting VMAs that straddle the
    /// boundaries. Returns the removed pieces (clipped to the range).
    pub fn remove_range(&mut self, start: VirtAddr, len: u64) -> Vec<Vma> {
        let end = VirtAddr(start.0 + len);
        let mut removed = Vec::new();
        // Collect keys of affected VMAs.
        let mut affected: Vec<u64> = Vec::new();
        if let Some((&p, prev)) = self.map.range(..start.0).next_back() {
            if prev.end.0 > start.0 {
                affected.push(p);
            }
        }
        affected.extend(self.map.range(start.0..end.0).map(|(&k, _)| k));
        for k in affected {
            let v = self.map.remove(&k).expect("key listed above");
            // Left fragment stays.
            if v.start < start {
                self.map.insert(v.start.0, Vma { end: start, ..v });
            }
            // Right fragment stays (with adjusted file offset).
            if v.end > end {
                let backing = match v.backing {
                    Backing::File { id, offset } => Backing::File {
                        id,
                        offset: offset + (end - v.start),
                    },
                    b => b,
                };
                self.map.insert(
                    end.0,
                    Vma {
                        start: end,
                        backing,
                        ..v
                    },
                );
            }
            // The clipped middle is what was removed.
            let clip_start = v.start.max(start);
            let clip_end = v.end.min(end);
            let backing = match v.backing {
                Backing::File { id, offset } => Backing::File {
                    id,
                    offset: offset + (clip_start - v.start),
                },
                b => b,
            };
            removed.push(Vma {
                start: clip_start,
                end: clip_end,
                backing,
                ..v
            });
        }
        removed
    }

    /// Change the protection of `[start, start+len)`, splitting and
    /// re-merging as needed. Returns false if the range is not fully
    /// covered by existing VMAs.
    pub fn set_prot(&mut self, start: VirtAddr, len: u64, prot: Prot) -> bool {
        // Verify full coverage first.
        let mut at = start;
        let end = VirtAddr(start.0 + len);
        while at < end {
            match self.find(at) {
                Some(v) => at = v.end,
                None => return false,
            }
        }
        let pieces = self.remove_range(start, len);
        for p in pieces {
            self.insert(Vma { prot, ..p });
        }
        true
    }

    /// Iterate VMAs in address order.
    pub fn iter(&self) -> impl Iterator<Item = &Vma> {
        self.map.values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use o1_memfs::FileId;
    use proptest::prelude::*;

    fn anon(start: u64, pages: u64, prot: Prot) -> Vma {
        Vma {
            start: VirtAddr(start),
            end: VirtAddr(start + pages * PAGE_SIZE),
            prot,
            backing: Backing::Anon,
            shared: false,
            pinned: false,
            grow_limit: None,
        }
    }

    fn filev(start: u64, pages: u64, id: u64, offset: u64) -> Vma {
        Vma {
            start: VirtAddr(start),
            end: VirtAddr(start + pages * PAGE_SIZE),
            prot: Prot::ReadWrite,
            backing: Backing::File {
                id: FileId(id),
                offset,
            },
            shared: true,
            pinned: false,
            grow_limit: None,
        }
    }

    #[test]
    fn find_and_contains() {
        let mut m = VmaMap::new();
        m.insert(anon(0x10000, 4, Prot::ReadWrite));
        assert!(m.find(VirtAddr(0x10000)).is_some());
        assert!(m.find(VirtAddr(0x13fff)).is_some());
        assert!(m.find(VirtAddr(0x14000)).is_none());
        assert!(m.find(VirtAddr(0xffff)).is_none());
    }

    #[test]
    fn adjacent_compatible_vmas_merge() {
        let mut m = VmaMap::new();
        m.insert(anon(0x10000, 4, Prot::ReadWrite));
        m.insert(anon(0x14000, 4, Prot::ReadWrite));
        assert_eq!(m.len(), 1, "anon neighbours merged");
        let v = m.find(VirtAddr(0x10000)).unwrap();
        assert_eq!(v.end, VirtAddr(0x18000));
        // Bridge two regions.
        m.insert(anon(0x20000, 2, Prot::ReadWrite));
        m.insert(anon(0x18000, 8, Prot::ReadWrite));
        assert_eq!(m.len(), 1);
        assert_eq!(m.mapped_bytes(), 18 * PAGE_SIZE);
    }

    #[test]
    fn incompatible_neighbours_do_not_merge() {
        let mut m = VmaMap::new();
        m.insert(anon(0x10000, 4, Prot::ReadWrite));
        m.insert(anon(0x14000, 4, Prot::Read));
        assert_eq!(m.len(), 2, "different prot");
        m.insert(filev(0x18000, 4, 1, 0));
        assert_eq!(m.len(), 3, "file after anon");
    }

    #[test]
    fn file_vmas_merge_only_when_contiguous() {
        let mut m = VmaMap::new();
        m.insert(filev(0x10000, 4, 1, 0));
        m.insert(filev(0x14000, 4, 1, 4 * PAGE_SIZE));
        assert_eq!(m.len(), 1, "contiguous offsets merge");
        m.insert(filev(0x18000, 4, 1, 100 * PAGE_SIZE));
        assert_eq!(m.len(), 2, "discontiguous offsets do not");
        m.insert(filev(0x1c000, 4, 2, 104 * PAGE_SIZE));
        assert_eq!(m.len(), 3, "different file does not");
    }

    #[test]
    fn file_offset_tracking() {
        let mut m = VmaMap::new();
        m.insert(filev(0x10000, 8, 1, 0x3000));
        let v = m.find(VirtAddr(0x12000)).unwrap();
        assert_eq!(v.file_offset_of(VirtAddr(0x12345)), Some(0x3000 + 0x2345));
        assert_eq!(anon(0, 1, Prot::Read).file_offset_of(VirtAddr(0)), None);
    }

    #[test]
    fn overlap_rejected() {
        let mut m = VmaMap::new();
        m.insert(anon(0x10000, 4, Prot::ReadWrite));
        assert!(!m.is_free(VirtAddr(0x12000), PAGE_SIZE));
        assert!(!m.is_free(VirtAddr(0xf000), 2 * PAGE_SIZE));
        assert!(m.is_free(VirtAddr(0x14000), PAGE_SIZE));
    }

    #[test]
    #[should_panic(expected = "overlaps")]
    fn overlapping_insert_panics() {
        let mut m = VmaMap::new();
        m.insert(anon(0x10000, 4, Prot::ReadWrite));
        m.insert(anon(0x12000, 4, Prot::Read));
    }

    #[test]
    fn find_gap_skips_mappings() {
        let mut m = VmaMap::new();
        m.insert(anon(0x10000, 4, Prot::ReadWrite));
        m.insert(anon(0x20000, 4, Prot::Read));
        let gap = m.find_gap(VirtAddr(0x10000), 4 * PAGE_SIZE);
        assert_eq!(gap, VirtAddr(0x14000));
        let gap = m.find_gap(VirtAddr(0x10000), 0x10000);
        assert_eq!(gap, VirtAddr(0x24000));
        // Empty map: gap at min.
        assert_eq!(
            VmaMap::new().find_gap(VirtAddr(0x5000), 100),
            VirtAddr(0x5000)
        );
    }

    #[test]
    fn remove_range_splits() {
        let mut m = VmaMap::new();
        m.insert(anon(0x10000, 10, Prot::ReadWrite));
        let removed = m.remove_range(VirtAddr(0x12000), 2 * PAGE_SIZE);
        assert_eq!(removed.len(), 1);
        assert_eq!(removed[0].start, VirtAddr(0x12000));
        assert_eq!(removed[0].pages(), 2);
        assert_eq!(m.len(), 2, "hole splits the VMA");
        assert!(m.find(VirtAddr(0x12000)).is_none());
        assert!(m.find(VirtAddr(0x11000)).is_some());
        assert!(m.find(VirtAddr(0x14000)).is_some());
    }

    #[test]
    fn remove_range_preserves_file_offsets() {
        let mut m = VmaMap::new();
        m.insert(filev(0x10000, 10, 1, 0));
        m.remove_range(VirtAddr(0x12000), 2 * PAGE_SIZE);
        let right = m.find(VirtAddr(0x14000)).unwrap();
        assert_eq!(right.file_offset_of(VirtAddr(0x14000)), Some(4 * PAGE_SIZE));
    }

    #[test]
    fn remove_spanning_multiple_vmas() {
        let mut m = VmaMap::new();
        m.insert(anon(0x10000, 4, Prot::ReadWrite));
        m.insert(anon(0x14000, 4, Prot::Read)); // distinct prot: no merge
        m.insert(anon(0x18000, 4, Prot::ReadWrite));
        let removed = m.remove_range(VirtAddr(0x12000), 8 * PAGE_SIZE);
        assert_eq!(removed.len(), 3);
        assert_eq!(m.mapped_bytes(), 4 * PAGE_SIZE);
    }

    #[test]
    fn set_prot_splits_and_remerges() {
        let mut m = VmaMap::new();
        m.insert(anon(0x10000, 8, Prot::ReadWrite));
        assert!(m.set_prot(VirtAddr(0x12000), 2 * PAGE_SIZE, Prot::Read));
        assert_eq!(m.len(), 3);
        assert_eq!(m.find(VirtAddr(0x12000)).unwrap().prot, Prot::Read);
        // Restoring the protection merges back to one VMA.
        assert!(m.set_prot(VirtAddr(0x12000), 2 * PAGE_SIZE, Prot::ReadWrite));
        assert_eq!(m.len(), 1);
        // Uncovered range fails without mutating.
        assert!(!m.set_prot(VirtAddr(0x40000), PAGE_SIZE, Prot::Read));
    }

    proptest! {
        /// After arbitrary insert/remove sequences the map is sorted,
        /// non-overlapping, and maximally merged.
        #[test]
        fn invariants_hold(ops in proptest::collection::vec(
            (0u64..64, 1u64..8, any::<bool>(), any::<bool>()), 1..60)
        ) {
            let mut m = VmaMap::new();
            for (page, len, do_remove, rw) in ops {
                let start = VirtAddr(page * PAGE_SIZE);
                let bytes = len * PAGE_SIZE;
                if do_remove {
                    m.remove_range(start, bytes);
                } else if m.is_free(start, bytes) {
                    m.insert(anon(start.0, len, if rw { Prot::ReadWrite } else { Prot::Read }));
                }
                // Non-overlap + sorted.
                let vmas: Vec<&Vma> = m.iter().collect();
                for w in vmas.windows(2) {
                    prop_assert!(w[0].end <= w[1].start, "overlap or disorder");
                    prop_assert!(!w[0].can_merge_with(w[1]), "unmerged neighbours");
                }
            }
        }
    }
}
