//! Page reclaim machinery: swap device and LRU approximation lists.
//!
//! The paper's point (§3.1): with ample persistent memory "there is no
//! need to track the clean/dirty/referenced status of most memory,
//! which avoids the need for page reclamation algorithms (e.g., clock,
//! 2-queue)". To *measure* what is avoided, the baseline implements
//! both: a clock list and a simplified 2Q (active/inactive). The
//! A-RECLAIM ablation charges every page the scan examines.

use o1_hw::CostKind;
use std::collections::VecDeque;

use o1_hw::{FastMap, FastSet, FrameImage, FrameNo, Machine};

/// A slot on the swap device.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct SwapSlot(pub u64);

/// Simulated swap device: stores page images, charges I/O costs.
#[derive(Debug, Default)]
pub struct SwapDevice {
    /// Keyed by slot number — a trusted, kernel-issued fixed-width
    /// id, so the fast hasher is safe (and hot: one probe per page
    /// swapped either way).
    slots: FastMap<u64, FrameImage>,
    next: u64,
    free: Vec<u64>,
}

impl SwapDevice {
    /// Empty device.
    pub fn new() -> SwapDevice {
        SwapDevice::default()
    }

    /// Pages currently stored.
    pub fn used_slots(&self) -> usize {
        self.slots.len()
    }

    /// Write one page image out, charging swap-out I/O. The image is
    /// stored as moved (possibly sparse) backing, so swapping a
    /// lightly-written frame costs the host nothing page-sized.
    pub fn swap_out(&mut self, m: &mut Machine, data: FrameImage) -> SwapSlot {
        m.charge_kind(CostKind::SwapOutPage);
        m.perf.pages_swapped_out += 1;
        let slot = self.free.pop().unwrap_or_else(|| {
            let s = self.next;
            self.next += 1;
            s
        });
        self.slots.insert(slot, data);
        SwapSlot(slot)
    }

    /// Read a page image back, charging swap-in I/O. The slot is
    /// freed.
    ///
    /// # Panics
    /// Panics on an unknown slot (kernel bug).
    pub fn swap_in(&mut self, m: &mut Machine, slot: SwapSlot) -> FrameImage {
        m.charge_kind(CostKind::SwapInPage);
        m.perf.pages_swapped_in += 1;
        let data = self
            .slots
            .remove(&slot.0)
            .unwrap_or_else(|| panic!("swap-in of empty slot {slot:?}"));
        self.free.push(slot.0);
        data
    }

    /// Discard a slot without reading it (process exit).
    pub fn discard(&mut self, slot: SwapSlot) {
        if self.slots.remove(&slot.0).is_some() {
            self.free.push(slot.0);
        }
    }
}

/// Which LRU approximation the kernel runs.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ReclaimPolicy {
    /// Single clock list with a second-chance hand.
    Clock,
    /// Active/inactive lists (simplified 2Q).
    TwoQueue,
}

/// What the kernel should do with a scanned candidate.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ScanDecision {
    /// Referenced since last scan: give a second chance.
    Rotate,
    /// Unreferenced: evict now.
    Evict,
}

/// LRU bookkeeping over frames. Membership is tracked with a set so
/// removal is O(1) amortised (dead entries are skipped lazily).
#[derive(Debug)]
pub struct LruLists {
    policy: ReclaimPolicy,
    /// Clock list, or the *inactive* list under 2Q.
    inactive: VecDeque<FrameNo>,
    /// Active list (2Q only).
    active: VecDeque<FrameNo>,
    /// Keyed by frame number — trusted fixed-width hardware ids,
    /// probed once per scanned candidate, so the fast hasher is safe.
    member_inactive: FastSet<FrameNo>,
    member_active: FastSet<FrameNo>,
}

impl LruLists {
    /// Empty lists for the given policy.
    pub fn new(policy: ReclaimPolicy) -> LruLists {
        LruLists {
            policy,
            inactive: VecDeque::new(),
            active: VecDeque::new(),
            member_inactive: FastSet::default(),
            member_active: FastSet::default(),
        }
    }

    /// Policy in effect.
    pub fn policy(&self) -> ReclaimPolicy {
        self.policy
    }

    /// Frames currently tracked.
    pub fn len(&self) -> usize {
        self.member_inactive.len() + self.member_active.len()
    }

    /// True if nothing is tracked.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A newly-mapped frame enters the (in)active list tail.
    pub fn insert(&mut self, frame: FrameNo) {
        if self.member_inactive.contains(&frame) || self.member_active.contains(&frame) {
            return;
        }
        self.inactive.push_back(frame);
        self.member_inactive.insert(frame);
    }

    /// Remove a frame (freed or evicted). Lazy: the queue entry is
    /// skipped when it surfaces.
    pub fn remove(&mut self, frame: FrameNo) {
        self.member_inactive.remove(&frame);
        self.member_active.remove(&frame);
    }

    /// Next candidate frame to examine, or `None` if all lists are
    /// empty. The caller decides (based on referenced bits) and feeds
    /// the verdict back via [`LruLists::verdict`].
    pub fn next_candidate(&mut self) -> Option<FrameNo> {
        // 2Q scans the inactive list first, refilling from active.
        loop {
            if let Some(f) = self.inactive.pop_front() {
                if self.member_inactive.remove(&f) {
                    return Some(f);
                }
                continue; // dead entry
            }
            match self.policy {
                ReclaimPolicy::Clock => return None,
                ReclaimPolicy::TwoQueue => {
                    // Demote the whole active list head-to-tail once.
                    let f = self.active.pop_front()?;
                    if self.member_active.remove(&f) {
                        self.inactive.push_back(f);
                        self.member_inactive.insert(f);
                    }
                }
            }
        }
    }

    /// Report the decision for a candidate from
    /// [`LruLists::next_candidate`]. `Rotate` re-queues it (clock) or
    /// promotes it to the active list (2Q); `Evict` drops it.
    pub fn verdict(&mut self, frame: FrameNo, d: ScanDecision) {
        match d {
            ScanDecision::Evict => {}
            ScanDecision::Rotate => match self.policy {
                ReclaimPolicy::Clock => {
                    self.inactive.push_back(frame);
                    self.member_inactive.insert(frame);
                }
                ReclaimPolicy::TwoQueue => {
                    self.active.push_back(frame);
                    self.member_active.insert(frame);
                }
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use o1_hw::PAGE_SIZE;

    #[test]
    fn swap_roundtrip() {
        let mut m = Machine::dram_only(1 << 20);
        let mut s = SwapDevice::new();
        let data = FrameImage::from_page(vec![7u8; PAGE_SIZE as usize].into_boxed_slice());
        let slot = s.swap_out(&mut m, data);
        assert_eq!(s.used_slots(), 1);
        let back = s.swap_in(&mut m, slot);
        assert!(back.to_page().iter().all(|&b| b == 7));
        assert_eq!(s.used_slots(), 0);
        assert_eq!(m.perf.pages_swapped_out, 1);
        assert_eq!(m.perf.pages_swapped_in, 1);
        // Slot numbers are recycled.
        let slot2 =
            s.swap_out(&mut m, FrameImage::from_page(vec![1u8; PAGE_SIZE as usize].into_boxed_slice()));
        assert_eq!(slot2, slot);
    }

    #[test]
    fn swap_io_has_device_costs() {
        let mut m = Machine::dram_only(1 << 20);
        let mut s = SwapDevice::new();
        let (slot, out_ns) =
            m.timed(|m| s.swap_out(m, FrameImage::default()));
        assert_eq!(out_ns, m.cost.swap_out_page);
        let (_, in_ns) = m.timed(|m| s.swap_in(m, slot));
        assert_eq!(in_ns, m.cost.swap_in_page);
    }

    #[test]
    fn discard_frees_slot() {
        let mut m = Machine::dram_only(1 << 20);
        let mut s = SwapDevice::new();
        let slot = s.swap_out(&mut m, FrameImage::default());
        s.discard(slot);
        assert_eq!(s.used_slots(), 0);
    }

    #[test]
    fn clock_rotation_gives_second_chance() {
        let mut l = LruLists::new(ReclaimPolicy::Clock);
        l.insert(FrameNo(1));
        l.insert(FrameNo(2));
        let c = l.next_candidate().unwrap();
        assert_eq!(c, FrameNo(1));
        l.verdict(c, ScanDecision::Rotate);
        assert_eq!(l.next_candidate().unwrap(), FrameNo(2));
        // Frame 1 comes back around after rotation.
        l.verdict(FrameNo(2), ScanDecision::Evict);
        assert_eq!(l.next_candidate().unwrap(), FrameNo(1));
        l.verdict(FrameNo(1), ScanDecision::Evict);
        assert!(l.next_candidate().is_none());
    }

    #[test]
    fn removal_is_lazy_but_effective() {
        let mut l = LruLists::new(ReclaimPolicy::Clock);
        l.insert(FrameNo(1));
        l.insert(FrameNo(2));
        l.remove(FrameNo(1));
        assert_eq!(l.len(), 1);
        assert_eq!(l.next_candidate().unwrap(), FrameNo(2));
    }

    #[test]
    fn duplicate_insert_ignored() {
        let mut l = LruLists::new(ReclaimPolicy::Clock);
        l.insert(FrameNo(1));
        l.insert(FrameNo(1));
        assert_eq!(l.len(), 1);
    }

    #[test]
    fn two_queue_promotes_referenced() {
        let mut l = LruLists::new(ReclaimPolicy::TwoQueue);
        l.insert(FrameNo(1));
        l.insert(FrameNo(2));
        // Frame 1 referenced → promoted to active.
        let c = l.next_candidate().unwrap();
        l.verdict(c, ScanDecision::Rotate);
        // Frame 2 unreferenced → evicted.
        let c2 = l.next_candidate().unwrap();
        assert_eq!(c2, FrameNo(2));
        l.verdict(c2, ScanDecision::Evict);
        // Inactive empty: the active list is demoted and rescanned.
        assert_eq!(l.next_candidate().unwrap(), FrameNo(1));
    }

    #[test]
    fn two_queue_drains_fully() {
        let mut l = LruLists::new(ReclaimPolicy::TwoQueue);
        for i in 0..10 {
            l.insert(FrameNo(i));
        }
        let mut evicted = 0;
        while let Some(c) = l.next_candidate() {
            l.verdict(c, ScanDecision::Evict);
            evicted += 1;
        }
        assert_eq!(evicted, 10);
        assert!(l.is_empty());
    }
}
