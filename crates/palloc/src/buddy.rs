//! Binary buddy allocator — the Linux-style baseline.
//!
//! This is the allocator the paper's *status quo* uses: allocations are
//! rounded up to a power-of-two block, blocks split on allocation and
//! coalesce with their buddy on free. Per-allocation cost grows with
//! the number of split/coalesce levels, and — crucially for the paper's
//! argument — the conventional kernel calls it *once per page* when
//! populating a region, which is where the linear cost in Figure 1a
//! comes from.

use o1_hw::{CostKind, FastMap};
use std::collections::BTreeSet;

use o1_hw::{FrameNo, Machine};

use crate::extent::{AllocError, FrameSource, PhysExtent};

/// Largest block order supported: 2^18 frames = 1 GiB.
pub const MAX_ORDER: u32 = 18;

/// Binary buddy allocator over a span of frames.
#[derive(Debug)]
pub struct BuddyAllocator {
    /// Free blocks per order, keyed by start frame.
    free_lists: Vec<BTreeSet<u64>>,
    /// Order of each outstanding allocation, for free(). Keyed by
    /// trusted fixed-width frame numbers the allocator itself issued,
    /// so the fast hasher is safe; probed once per alloc and free.
    allocated: FastMap<u64, u32>,
    base: u64,
    span_frames: u64,
    free: u64,
}

impl BuddyAllocator {
    /// The frame range this allocator manages.
    pub fn span(&self) -> PhysExtent {
        PhysExtent::new(FrameNo(self.base), self.span_frames)
    }

    /// Manage `span` (initially all free). The span need not be a
    /// power of two; it is tiled greedily with aligned blocks.
    pub fn new(span: PhysExtent) -> BuddyAllocator {
        assert!(span.frames > 0, "empty span");
        let mut b = BuddyAllocator {
            free_lists: vec![BTreeSet::new(); (MAX_ORDER + 1) as usize],
            allocated: FastMap::default(),
            base: span.start.0,
            span_frames: span.frames,
            free: span.frames,
        };
        // Tile the span with maximal naturally-aligned blocks.
        let mut at = span.start.0;
        let end = span.end().0;
        while at < end {
            let align_order = if at == 0 {
                MAX_ORDER
            } else {
                at.trailing_zeros().min(MAX_ORDER)
            };
            let fit_order = (64 - (end - at).leading_zeros() - 1).min(MAX_ORDER);
            let order = align_order.min(fit_order);
            b.free_lists[order as usize].insert(at);
            at += 1 << order;
        }
        b
    }

    /// Order whose block size (2^order frames) first fits `frames`.
    pub fn order_for(frames: u64) -> u32 {
        debug_assert!(frames > 0);
        frames.next_power_of_two().trailing_zeros()
    }

    /// Allocate one 2^order block, splitting larger blocks as needed.
    /// Charges the buddy fast-path cost plus one level cost per split.
    pub fn alloc_order(&mut self, m: &mut Machine, order: u32) -> Result<PhysExtent, AllocError> {
        assert!(order <= MAX_ORDER, "order {order} too large");
        // Find the smallest order with a free block.
        let found = (order..=MAX_ORDER).find(|&o| !self.free_lists[o as usize].is_empty());
        let Some(mut at_order) = found else {
            return Err(AllocError::OutOfMemory {
                requested: 1 << order,
            });
        };
        let start = *self.free_lists[at_order as usize]
            .iter()
            .next()
            .expect("nonempty");
        self.free_lists[at_order as usize].remove(&start);
        m.charge_kind(CostKind::BuddyAlloc);
        // Split down to the requested order.
        while at_order > order {
            at_order -= 1;
            m.charge_kind(CostKind::BuddyLevel);
            let buddy = start + (1u64 << at_order);
            self.free_lists[at_order as usize].insert(buddy);
        }
        let frames = 1u64 << order;
        self.allocated.insert(start, order);
        self.free -= frames;
        m.perf.alloc_calls += 1;
        m.perf.frames_alloced += frames;
        Ok(PhysExtent::new(FrameNo(start), frames))
    }

    /// Allocate a single frame — the per-page hot path the baseline
    /// kernel hits on every demand fault and every populated page.
    pub fn alloc_one(&mut self, m: &mut Machine) -> Result<PhysExtent, AllocError> {
        self.alloc_order(m, 0)
    }

    /// Allocate `n` single frames exactly as `n` [`alloc_one`] calls
    /// would — same frames in the same order, same splits, same free
    /// lists and allocation map afterwards — but with one aggregate
    /// charge block instead of per-call charges (the ledger sums
    /// `(phase, kind)` rows, so the bytes are identical). Returns
    /// `(frame, splits)` per allocation so the bulk-fault path can
    /// group equal-latency pages when recording histograms.
    ///
    /// Fails with no state change and no charge unless all `n` frames
    /// fit; callers clamp `n` to [`free_frames`] first so a fused run
    /// never diverges from where the interpreter would hit pressure.
    ///
    /// [`alloc_one`]: Self::alloc_one
    /// [`free_frames`]: FrameSource::free_frames
    pub fn alloc_run(
        &mut self,
        m: &mut Machine,
        n: u64,
    ) -> Result<Vec<(FrameNo, u32)>, AllocError> {
        let mut out = Vec::with_capacity(n as usize);
        self.alloc_run_with(m, n, |_, frame, splits| out.push((frame, splits)))?;
        Ok(out)
    }

    /// [`alloc_run`](Self::alloc_run) without the frame vector: `sink`
    /// is called once per allocation, in allocation order, with the
    /// machine on loan so the caller can zero/map/write each frame as
    /// it appears. Keeps the bulk-populate path free of host heap
    /// allocations, which the host-memory self-observation figures
    /// would otherwise see.
    pub fn alloc_run_with(
        &mut self,
        m: &mut Machine,
        n: u64,
        mut sink: impl FnMut(&mut Machine, FrameNo, u32),
    ) -> Result<(), AllocError> {
        if n > self.free {
            return Err(AllocError::OutOfMemory { requested: n });
        }
        if n == 0 {
            return Ok(());
        }
        let mut total_splits = 0u64;
        for _ in 0..n {
            let mut at_order = (0..=MAX_ORDER)
                .find(|&o| !self.free_lists[o as usize].is_empty())
                .expect("free count positive but no free block");
            let start = *self.free_lists[at_order as usize]
                .iter()
                .next()
                .expect("nonempty");
            self.free_lists[at_order as usize].remove(&start);
            let mut splits = 0u32;
            while at_order > 0 {
                at_order -= 1;
                splits += 1;
                let buddy = start + (1u64 << at_order);
                self.free_lists[at_order as usize].insert(buddy);
            }
            self.allocated.insert(start, 0);
            self.free -= 1;
            total_splits += u64::from(splits);
            sink(m, FrameNo(start), splits);
        }
        m.charge_opn(CostKind::BuddyAlloc, n);
        if total_splits > 0 {
            m.charge_opn(CostKind::BuddyLevel, total_splits);
        }
        m.perf.alloc_calls += n;
        m.perf.frames_alloced += n;
        Ok(())
    }

    /// Free a block returned by [`alloc_order`](Self::alloc_order),
    /// coalescing with free buddies.
    ///
    /// # Panics
    /// Panics on double free or on freeing an unknown block.
    pub fn free_block(&mut self, m: &mut Machine, ext: PhysExtent) {
        let order = self
            .allocated
            .remove(&ext.start.0)
            .unwrap_or_else(|| panic!("free of unallocated block {ext:?}"));
        assert_eq!(
            1u64 << order,
            ext.frames,
            "size mismatch on free of {ext:?}"
        );
        m.charge_kind(CostKind::BuddyFree);
        m.perf.frames_freed += ext.frames;
        self.free += ext.frames;
        let mut start = ext.start.0;
        let mut order = order;
        while order < MAX_ORDER {
            let buddy = start ^ (1u64 << order);
            if !self.free_lists[order as usize].remove(&buddy) {
                break;
            }
            m.charge_kind(CostKind::BuddyLevel);
            start = start.min(buddy);
            order += 1;
        }
        self.free_lists[order as usize].insert(start);
    }

    /// Number of free blocks at `order` (diagnostics).
    pub fn free_blocks_at(&self, order: u32) -> usize {
        self.free_lists[order as usize].len()
    }
}

impl FrameSource for BuddyAllocator {
    /// Allocate `frames` contiguous frames by rounding up to the next
    /// power-of-two block, as the Linux buddy does. The unused tail is
    /// wasted until free — the space-for-time trade the paper accepts.
    fn alloc(&mut self, m: &mut Machine, frames: u64) -> Result<PhysExtent, AllocError> {
        assert!(frames > 0, "zero-length allocation");
        let order = frames.next_power_of_two().trailing_zeros();
        if order > MAX_ORDER {
            return Err(AllocError::OutOfMemory { requested: frames });
        }
        self.alloc_order(m, order)
    }

    fn alloc_aligned(
        &mut self,
        m: &mut Machine,
        frames: u64,
        align_frames: u64,
    ) -> Result<PhysExtent, AllocError> {
        assert!(align_frames.is_power_of_two());
        // Buddy blocks are naturally aligned to their size, so
        // allocating max(size, align) guarantees alignment.
        let want = frames.next_power_of_two().max(align_frames);
        self.alloc(m, want)
    }

    fn free(&mut self, m: &mut Machine, ext: PhysExtent) {
        self.free_block(m, ext);
    }

    fn free_frames(&self) -> u64 {
        self.free
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn machine() -> Machine {
        Machine::dram_only(1 << 30)
    }

    fn buddy(frames: u64) -> BuddyAllocator {
        BuddyAllocator::new(PhysExtent::new(FrameNo(0), frames))
    }

    #[test]
    fn alloc_one_and_free() {
        let mut m = machine();
        let mut b = buddy(1024);
        let e = b.alloc_one(&mut m).unwrap();
        assert_eq!(e.frames, 1);
        assert_eq!(b.free_frames(), 1023);
        b.free_block(&mut m, e);
        assert_eq!(b.free_frames(), 1024);
    }

    #[test]
    fn blocks_are_naturally_aligned() {
        let mut m = machine();
        let mut b = buddy(1 << 12);
        for order in [0u32, 3, 5, 9] {
            let e = b.alloc_order(&mut m, order).unwrap();
            assert_eq!(e.start.0 % (1 << order), 0, "order {order} misaligned");
        }
    }

    #[test]
    fn coalescing_restores_full_block() {
        let mut m = machine();
        let mut b = buddy(16);
        let all: Vec<_> = (0..16).map(|_| b.alloc_one(&mut m).unwrap()).collect();
        assert_eq!(b.free_frames(), 0);
        assert!(b.alloc_one(&mut m).is_err());
        for e in all {
            b.free_block(&mut m, e);
        }
        assert_eq!(b.free_frames(), 16);
        assert_eq!(b.free_blocks_at(4), 1, "coalesced to one order-4 block");
    }

    #[test]
    fn split_costs_grow_with_distance() {
        // Allocating order 0 from a pristine large region costs more
        // than when small blocks already exist (Linux-like behaviour).
        let mut m = machine();
        let mut b = buddy(1 << 12);
        let (_, first) = m.timed(|m| b.alloc_one(m).unwrap());
        let (_, second) = m.timed(|m| b.alloc_one(m).unwrap());
        assert!(first > second, "first alloc splits many levels");
        assert_eq!(second, m.cost.buddy_alloc);
    }

    #[test]
    fn trait_alloc_rounds_up() {
        let mut m = machine();
        let mut b = buddy(1024);
        let e = b.alloc(&mut m, 100).unwrap();
        assert_eq!(e.frames, 128, "rounded to 2^7");
        b.free(&mut m, e);
        assert_eq!(b.free_frames(), 1024);
    }

    #[test]
    fn trait_alloc_aligned() {
        let mut m = machine();
        let mut b = buddy(4096);
        let _skew = b.alloc_one(&mut m).unwrap();
        let e = b.alloc_aligned(&mut m, 3, 512).unwrap();
        assert_eq!(e.start.0 % 512, 0);
        assert!(e.frames >= 3);
    }

    #[test]
    fn non_power_of_two_span_is_tiled() {
        let mut m = machine();
        // 1000 frames: 512 + 256 + 128 + 64 + 32 + 8.
        let mut b = buddy(1000);
        assert_eq!(b.free_frames(), 1000);
        let e = b.alloc_order(&mut m, 9).unwrap();
        assert_eq!(e.frames, 512);
        assert_eq!(b.free_frames(), 488);
    }

    #[test]
    fn offset_span() {
        let mut m = machine();
        let mut b = BuddyAllocator::new(PhysExtent::new(FrameNo(256), 256));
        let e = b.alloc(&mut m, 256).unwrap();
        assert_eq!(e.start, FrameNo(256));
        assert!(b.alloc_one(&mut m).is_err());
    }

    #[test]
    #[should_panic(expected = "free of unallocated block")]
    fn double_free_panics() {
        let mut m = machine();
        let mut b = buddy(16);
        let e = b.alloc_one(&mut m).unwrap();
        b.free_block(&mut m, e);
        b.free_block(&mut m, e);
    }

    proptest! {
        /// Buddy conserves frames and never double-allocates.
        #[test]
        fn conservation(ops in proptest::collection::vec((0u32..6, any::<bool>(), 0usize..16), 1..200)) {
            let total = 4096u64;
            let mut m = machine();
            let mut b = buddy(total);
            let mut live: Vec<PhysExtent> = Vec::new();
            for (order, do_free, pick) in ops {
                if do_free && !live.is_empty() {
                    let e = live.swap_remove(pick % live.len());
                    b.free_block(&mut m, e);
                } else if let Ok(e) = b.alloc_order(&mut m, order) {
                    for other in &live {
                        prop_assert!(!e.overlaps(other));
                    }
                    live.push(e);
                }
                let live_frames: u64 = live.iter().map(|e| e.frames).sum();
                prop_assert_eq!(b.free_frames() + live_frames, total);
            }
            for e in live.drain(..) {
                b.free_block(&mut m, e);
            }
            prop_assert_eq!(b.free_frames(), total);
            prop_assert_eq!(b.free_blocks_at(12), 1, "fully coalesced");
        }
    }
}
