//! Bitmap frame allocator — the file-system-style allocator.
//!
//! The paper observes that file systems represent unused blocks with
//! "a single bit in a bitmap, as compared to the complex per-page
//! metadata maintained by memory management" (§3.1/§4.1). This is that
//! allocator: one bit per frame, next-fit search for runs, used by the
//! PMFS model for its block allocation. Its metadata footprint is what
//! the T-META experiment compares against `struct page`.

use o1_hw::CostKind;
use o1_hw::{FrameNo, Machine};

use crate::extent::{AllocError, FrameSource, PhysExtent};

/// One-bit-per-frame allocator with next-fit run search.
#[derive(Debug, Clone)]
pub struct BitmapAllocator {
    /// Bit set ⇒ frame allocated.
    words: Vec<u64>,
    base: u64,
    frames: u64,
    free: u64,
    /// Next-fit cursor (frame index relative to base).
    cursor: u64,
}

impl BitmapAllocator {
    /// Manage `span`, initially all free.
    pub fn new(span: PhysExtent) -> BitmapAllocator {
        assert!(span.frames > 0, "empty span");
        BitmapAllocator {
            words: vec![0; span.frames.div_ceil(64) as usize],
            base: span.start.0,
            frames: span.frames,
            free: span.frames,
            cursor: 0,
        }
    }

    /// Bytes of allocator metadata — one bit per frame. The paper's
    /// point: this is ~512x smaller than a 64-byte `struct page`.
    pub fn metadata_bytes(&self) -> u64 {
        (self.words.len() * 8) as u64
    }

    #[inline]
    fn bit(&self, idx: u64) -> bool {
        self.words[(idx / 64) as usize] >> (idx % 64) & 1 == 1
    }

    #[inline]
    fn set_bit(&mut self, idx: u64, v: bool) {
        let w = &mut self.words[(idx / 64) as usize];
        if v {
            *w |= 1 << (idx % 64);
        } else {
            *w &= !(1 << (idx % 64));
        }
    }

    /// True if the frame is currently allocated.
    pub fn is_allocated(&self, frame: FrameNo) -> bool {
        assert!(
            frame.0 >= self.base && frame.0 < self.base + self.frames,
            "frame out of span"
        );
        self.bit(frame.0 - self.base)
    }

    /// Allocate a *specific* extent (journal replay / recovery path).
    /// Fails if any frame in it is already allocated.
    pub fn alloc_at(&mut self, m: &mut Machine, ext: PhysExtent) -> Result<PhysExtent, AllocError> {
        assert!(
            ext.start.0 >= self.base && ext.end().0 <= self.base + self.frames,
            "extent {ext:?} outside span"
        );
        let start = ext.start.0 - self.base;
        for i in 0..ext.frames {
            if self.bit(start + i) {
                return Err(AllocError::OutOfMemory {
                    requested: ext.frames,
                });
            }
        }
        for i in 0..ext.frames {
            self.set_bit(start + i, true);
        }
        self.free -= ext.frames;
        m.charge_kind(CostKind::ExtentAlloc);
        m.perf.alloc_calls += 1;
        m.perf.frames_alloced += ext.frames;
        Ok(ext)
    }

    /// Find a free run of `len` frames starting at or after `from`
    /// (relative index), with the given alignment of the *absolute*
    /// frame number. Returns the relative start index.
    ///
    /// The search is word-at-a-time: free-run candidates are verified
    /// 64 bits per step, and on failure the cursor jumps to the next
    /// free bit (skipping fully-allocated words) instead of advancing
    /// one frame. Every candidate skipped this way starts on an
    /// allocated frame and would fail immediately, so the first
    /// position returned — and therefore every allocation decision —
    /// is identical to a naive bit-by-bit scan.
    fn find_run(&self, from: u64, len: u64, align: u64) -> Option<u64> {
        let mut idx = from;
        while idx + len <= self.frames {
            // Align the absolute frame number.
            let abs = (self.base + idx).next_multiple_of(align);
            idx = abs - self.base;
            if idx + len > self.frames {
                return None;
            }
            match self.first_allocated_in(idx, len) {
                None => return Some(idx),
                Some(p) => idx = self.next_free_after(p),
            }
        }
        None
    }

    /// First allocated frame index in `[start, start + len)`, if any,
    /// probing a 64-bit word per step.
    fn first_allocated_in(&self, start: u64, len: u64) -> Option<u64> {
        let end = start + len;
        let mut i = start;
        while i < end {
            let bit = i % 64;
            let window = u64::min(64 - bit, end - i);
            let mut w = self.words[(i / 64) as usize] >> bit;
            if window < 64 {
                w &= (1u64 << window) - 1;
            }
            if w != 0 {
                return Some(i + w.trailing_zeros() as u64);
            }
            i += window;
        }
        None
    }

    /// Index of the first free frame strictly after `p`, skipping
    /// fully-allocated words; `self.frames` when none remain.
    fn next_free_after(&self, p: u64) -> u64 {
        let mut i = p + 1;
        while i < self.frames {
            let bit = i % 64;
            let window = 64 - bit;
            let mut w = !(self.words[(i / 64) as usize] >> bit);
            if window < 64 {
                w &= (1u64 << window) - 1;
            }
            if w != 0 {
                return u64::min(i + w.trailing_zeros() as u64, self.frames);
            }
            i += window;
        }
        self.frames
    }
}

impl FrameSource for BitmapAllocator {
    fn alloc(&mut self, m: &mut Machine, frames: u64) -> Result<PhysExtent, AllocError> {
        self.alloc_aligned(m, frames, 1)
    }

    fn alloc_aligned(
        &mut self,
        m: &mut Machine,
        frames: u64,
        align_frames: u64,
    ) -> Result<PhysExtent, AllocError> {
        assert!(frames > 0, "zero-length allocation");
        assert!(
            align_frames.is_power_of_two(),
            "alignment must be a power of two"
        );
        if frames > self.free {
            return Err(AllocError::OutOfMemory { requested: frames });
        }
        // Next-fit from the cursor, wrapping once.
        let found = self
            .find_run(self.cursor, frames, align_frames)
            .or_else(|| self.find_run(0, frames, align_frames));
        let Some(start) = found else {
            return Err(AllocError::OutOfMemory { requested: frames });
        };
        for i in 0..frames {
            self.set_bit(start + i, true);
        }
        self.cursor = start + frames;
        self.free -= frames;
        m.charge_kind(CostKind::ExtentAlloc);
        m.perf.alloc_calls += 1;
        m.perf.frames_alloced += frames;
        Ok(PhysExtent::new(FrameNo(self.base + start), frames))
    }

    fn free(&mut self, m: &mut Machine, ext: PhysExtent) {
        assert!(
            ext.start.0 >= self.base && ext.end().0 <= self.base + self.frames,
            "extent {ext:?} outside span"
        );
        let start = ext.start.0 - self.base;
        for i in 0..ext.frames {
            assert!(
                self.bit(start + i),
                "double free at frame {}",
                ext.start.0 + i
            );
            self.set_bit(start + i, false);
        }
        self.free += ext.frames;
        m.charge_kind(CostKind::ExtentFree);
        m.perf.frames_freed += ext.frames;
    }

    fn free_frames(&self) -> u64 {
        self.free
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashSet;

    fn machine() -> Machine {
        Machine::dram_only(1 << 30)
    }

    fn bm(frames: u64) -> BitmapAllocator {
        BitmapAllocator::new(PhysExtent::new(FrameNo(0), frames))
    }

    #[test]
    fn alloc_free_roundtrip() {
        let mut m = machine();
        let mut a = bm(256);
        let e = a.alloc(&mut m, 10).unwrap();
        assert_eq!(e.frames, 10);
        assert!(a.is_allocated(e.start));
        assert_eq!(a.free_frames(), 246);
        a.free(&mut m, e);
        assert_eq!(a.free_frames(), 256);
        assert!(!a.is_allocated(e.start));
    }

    #[test]
    fn next_fit_advances_then_wraps() {
        let mut m = machine();
        let mut a = bm(100);
        let e1 = a.alloc(&mut m, 40).unwrap();
        let e2 = a.alloc(&mut m, 40).unwrap();
        assert_eq!(e2.start.0, 40);
        a.free(&mut m, e1);
        // 20 free at the end + 40 at the start: a 30-frame request
        // wraps to the start.
        let e3 = a.alloc(&mut m, 30).unwrap();
        assert_eq!(e3.start.0, 0);
    }

    #[test]
    fn aligned_allocation() {
        let mut m = machine();
        let mut a = BitmapAllocator::new(PhysExtent::new(FrameNo(100), 1000));
        let _skew = a.alloc(&mut m, 5).unwrap();
        let e = a.alloc_aligned(&mut m, 64, 128).unwrap();
        assert_eq!(e.start.0 % 128, 0);
    }

    #[test]
    fn metadata_is_one_bit_per_frame() {
        let a = bm(1 << 18); // 1 GiB worth of frames
        assert_eq!(a.metadata_bytes(), (1 << 18) / 8);
    }

    #[test]
    fn fragmentation_oom() {
        let mut m = machine();
        let mut a = bm(64);
        // Allocate all, free every other frame: 32 free, no run of 2.
        let all: Vec<_> = (0..64).map(|_| a.alloc(&mut m, 1).unwrap()).collect();
        for (i, e) in all.iter().enumerate() {
            if i % 2 == 0 {
                a.free(&mut m, *e);
            }
        }
        assert_eq!(a.free_frames(), 32);
        assert!(a.alloc(&mut m, 2).is_err());
        assert!(a.alloc(&mut m, 1).is_ok());
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let mut m = machine();
        let mut a = bm(16);
        let e = a.alloc(&mut m, 4).unwrap();
        a.free(&mut m, e);
        a.free(&mut m, e);
    }

    #[test]
    fn cost_independent_of_size() {
        let mut m = machine();
        let mut a = bm(1 << 20);
        let (_, small) = m.timed(|m| a.alloc(m, 1).unwrap());
        let (_, large) = m.timed(|m| a.alloc(m, 1 << 16).unwrap());
        assert_eq!(small, large, "simulated cost is size-independent");
    }

    proptest! {
        /// Bitmap allocator agrees with a reference set model.
        #[test]
        fn matches_reference_model(ops in proptest::collection::vec((1u64..32, any::<bool>(), 0usize..8), 1..150)) {
            let total = 1024u64;
            let mut m = machine();
            let mut a = bm(total);
            let mut live: Vec<PhysExtent> = Vec::new();
            let mut model: HashSet<u64> = HashSet::new();
            for (size, do_free, pick) in ops {
                if do_free && !live.is_empty() {
                    let e = live.swap_remove(pick % live.len());
                    a.free(&mut m, e);
                    for f in e.start.0..e.end().0 {
                        model.remove(&f);
                    }
                } else if let Ok(e) = a.alloc(&mut m, size) {
                    for f in e.start.0..e.end().0 {
                        prop_assert!(model.insert(f), "frame {f} double-allocated");
                    }
                    live.push(e);
                }
                prop_assert_eq!(a.free_frames(), total - model.len() as u64);
            }
            for f in 0..total {
                prop_assert_eq!(a.is_allocated(FrameNo(f)), model.contains(&f));
            }
        }
    }
}
