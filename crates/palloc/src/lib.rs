//! # o1-palloc — physical-memory allocators for *Towards O(1) Memory*
//!
//! Four allocators and three zeroing policies, all charging calibrated
//! simulated costs so the paper's allocation experiments (Figure 2/7,
//! A-ALLOC, A-ZERO) can be regenerated:
//!
//! * [`buddy::BuddyAllocator`] — the Linux-style baseline, called once
//!   per page by the conventional kernel;
//! * [`bitmap::BitmapAllocator`] — the file-system-style one-bit-per-
//!   frame allocator used by the PMFS model;
//! * [`extent::ExtentAllocator`] — best-fit contiguous extents with
//!   O(1) simulated cost independent of length, the backbone of
//!   file-only memory;
//! * [`slab::SlabCache`] / [`slab::SizeClassAllocator`] — Bonwick-style
//!   slabs applied to physical memory, as §3.1 proposes;
//! * [`zero`] — eager, background-pool and crypto-erase zeroing.
//!
//! All allocators implement [`extent::FrameSource`], so kernels are
//! parametric in allocation policy.

pub mod bitmap;
pub mod buddy;
pub mod extent;
pub mod slab;
pub mod zero;

pub use bitmap::BitmapAllocator;
pub use buddy::{BuddyAllocator, MAX_ORDER};
pub use extent::{AllocError, ExtentAllocator, FrameSource, PhysExtent};
pub use slab::{SizeClassAllocator, SlabCache};
pub use zero::{CryptoZero, EagerZero, ZeroPolicy, ZeroPool};
