//! Physical extents and the extent allocator.
//!
//! The paper's O(1) allocation story rests on handing out *contiguous
//! extents* whose management cost is independent of their length
//! (§3.1: "file systems can efficiently allocate large contiguous
//! extents, which reduces the per-page cost of allocation"). The
//! [`ExtentAllocator`] here keeps free space in two B-tree indexes
//! (by start, for coalescing; by length, for best-fit) so every
//! allocate/free is O(log #free-runs) regardless of the extent size —
//! and charges exactly one constant simulated cost.

use o1_hw::CostKind;
use std::collections::{BTreeMap, BTreeSet};

use o1_hw::{FrameNo, Machine, PhysAddr, PAGE_SIZE};

/// A contiguous run of physical frames.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash, PartialOrd, Ord)]
pub struct PhysExtent {
    /// First frame.
    pub start: FrameNo,
    /// Number of frames (always > 0 for allocator-produced extents).
    pub frames: u64,
}

impl PhysExtent {
    /// Build an extent.
    pub fn new(start: FrameNo, frames: u64) -> PhysExtent {
        PhysExtent { start, frames }
    }

    /// Base physical address.
    #[inline]
    pub fn base(&self) -> PhysAddr {
        self.start.base()
    }

    /// Length in bytes.
    #[inline]
    pub fn bytes(&self) -> u64 {
        self.frames * PAGE_SIZE
    }

    /// One past the last frame.
    #[inline]
    pub fn end(&self) -> FrameNo {
        FrameNo(self.start.0 + self.frames)
    }

    /// True if `frame` lies inside this extent.
    #[inline]
    pub fn contains(&self, frame: FrameNo) -> bool {
        self.start.0 <= frame.0 && frame.0 < self.end().0
    }

    /// True if the two extents share any frame.
    #[inline]
    pub fn overlaps(&self, other: &PhysExtent) -> bool {
        self.start.0 < other.end().0 && other.start.0 < self.end().0
    }
}

/// Allocation failure.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AllocError {
    /// Not enough (contiguous) free memory for the request.
    OutOfMemory {
        /// Frames requested.
        requested: u64,
    },
}

impl core::fmt::Display for AllocError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            AllocError::OutOfMemory { requested } => {
                write!(f, "out of physical memory (requested {requested} frames)")
            }
        }
    }
}

impl std::error::Error for AllocError {}

/// Common interface over the physical allocators so kernels can be
/// parameterised by allocation policy.
pub trait FrameSource {
    /// Allocate a contiguous extent of `frames` frames.
    fn alloc(&mut self, m: &mut Machine, frames: u64) -> Result<PhysExtent, AllocError>;

    /// Allocate a contiguous extent whose base frame is a multiple of
    /// `align_frames` (power of two) — needed for huge-page-aligned
    /// file extents and shared page tables.
    fn alloc_aligned(
        &mut self,
        m: &mut Machine,
        frames: u64,
        align_frames: u64,
    ) -> Result<PhysExtent, AllocError>;

    /// Return an extent to the allocator.
    fn free(&mut self, m: &mut Machine, ext: PhysExtent);

    /// Frames currently free.
    fn free_frames(&self) -> u64;
}

/// Best-fit extent allocator with full coalescing.
///
/// # Examples
/// ```
/// use o1_hw::{FrameNo, Machine};
/// use o1_palloc::{ExtentAllocator, FrameSource, PhysExtent};
///
/// let mut m = Machine::dram_only(1 << 30);
/// let mut a = ExtentAllocator::new(PhysExtent::new(FrameNo(0), 1 << 18));
/// // The simulated cost is identical for 1 page and for 1 GiB:
/// let (small, ns_small) = m.timed(|m| a.alloc(m, 1).unwrap());
/// let (large, ns_large) = m.timed(|m| a.alloc(m, 1 << 17).unwrap());
/// assert_eq!(ns_small, ns_large);
/// a.free(&mut m, small);
/// a.free(&mut m, large);
/// ```
#[derive(Debug)]
pub struct ExtentAllocator {
    /// Free runs keyed by start frame → length.
    by_start: BTreeMap<u64, u64>,
    /// Free runs keyed by (length, start) for best-fit.
    by_len: BTreeSet<(u64, u64)>,
    free: u64,
    span: PhysExtent,
}

impl ExtentAllocator {
    /// Manage the frames of `span` (initially all free).
    pub fn new(span: PhysExtent) -> ExtentAllocator {
        assert!(span.frames > 0, "empty span");
        let mut a = ExtentAllocator {
            by_start: BTreeMap::new(),
            by_len: BTreeSet::new(),
            free: span.frames,
            span,
        };
        a.insert_run(span.start.0, span.frames);
        a
    }

    /// The full frame range this allocator manages.
    pub fn span(&self) -> PhysExtent {
        self.span
    }

    /// Number of distinct free runs (fragmentation metric).
    pub fn free_runs(&self) -> usize {
        self.by_start.len()
    }

    /// Largest single free run, in frames.
    pub fn largest_run(&self) -> u64 {
        self.by_len.iter().next_back().map_or(0, |&(len, _)| len)
    }

    fn insert_run(&mut self, start: u64, len: u64) {
        debug_assert!(len > 0);
        self.by_start.insert(start, len);
        self.by_len.insert((len, start));
    }

    fn remove_run(&mut self, start: u64, len: u64) {
        let removed = self.by_start.remove(&start);
        debug_assert_eq!(removed, Some(len));
        let was = self.by_len.remove(&(len, start));
        debug_assert!(was);
    }

    /// Carve `frames` out of the run at (`start`, `len`) beginning at
    /// `carve_start` (which must lie within the run).
    fn carve(&mut self, start: u64, len: u64, carve_start: u64, frames: u64) -> PhysExtent {
        debug_assert!(start <= carve_start && carve_start + frames <= start + len);
        self.remove_run(start, len);
        if carve_start > start {
            self.insert_run(start, carve_start - start);
        }
        let tail_start = carve_start + frames;
        let tail_len = (start + len) - tail_start;
        if tail_len > 0 {
            self.insert_run(tail_start, tail_len);
        }
        self.free -= frames;
        PhysExtent::new(FrameNo(carve_start), frames)
    }
}

impl FrameSource for ExtentAllocator {
    fn alloc(&mut self, m: &mut Machine, frames: u64) -> Result<PhysExtent, AllocError> {
        self.alloc_aligned(m, frames, 1)
    }

    fn alloc_aligned(
        &mut self,
        m: &mut Machine,
        frames: u64,
        align_frames: u64,
    ) -> Result<PhysExtent, AllocError> {
        assert!(frames > 0, "zero-length allocation");
        assert!(
            align_frames.is_power_of_two(),
            "alignment must be a power of two"
        );
        // Best-fit: smallest run that can satisfy the request after
        // alignment padding.
        let pick = self.by_len.range((frames, 0)..).find_map(|&(len, start)| {
            let aligned = start.next_multiple_of(align_frames);
            (aligned + frames <= start + len).then_some((start, len, aligned))
        });
        match pick {
            Some((start, len, aligned)) => {
                m.charge_kind(CostKind::ExtentAlloc);
                m.perf.alloc_calls += 1;
                m.perf.frames_alloced += frames;
                Ok(self.carve(start, len, aligned, frames))
            }
            None => Err(AllocError::OutOfMemory { requested: frames }),
        }
    }

    fn free(&mut self, m: &mut Machine, ext: PhysExtent) {
        assert!(ext.frames > 0, "freeing empty extent");
        assert!(
            self.span.start.0 <= ext.start.0 && ext.end().0 <= self.span.end().0,
            "extent {ext:?} outside allocator span {:?}",
            self.span
        );
        m.charge_kind(CostKind::ExtentFree);
        m.perf.frames_freed += ext.frames;
        let mut start = ext.start.0;
        let mut len = ext.frames;
        // Coalesce with predecessor.
        if let Some((&p_start, &p_len)) = self.by_start.range(..start).next_back() {
            assert!(p_start + p_len <= start, "double free of {ext:?}");
            if p_start + p_len == start {
                self.remove_run(p_start, p_len);
                start = p_start;
                len += p_len;
            }
        }
        // Coalesce with successor.
        if let Some((&n_start, &n_len)) = self.by_start.range(start + len..).next() {
            if n_start == start + len {
                self.remove_run(n_start, n_len);
                len += n_len;
            }
        }
        // Overlap with successor would indicate double free.
        if let Some((&n_start, _)) = self.by_start.range(start..).next() {
            assert!(n_start >= start + len, "double free of {ext:?}");
        }
        self.insert_run(start, len);
        self.free += ext.frames;
    }

    fn free_frames(&self) -> u64 {
        self.free
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn machine() -> Machine {
        Machine::dram_only(1 << 30)
    }

    fn alloc_of(frames: u64) -> ExtentAllocator {
        ExtentAllocator::new(PhysExtent::new(FrameNo(0), frames))
    }

    #[test]
    fn extent_geometry() {
        let e = PhysExtent::new(FrameNo(10), 5);
        assert_eq!(e.base(), PhysAddr(10 * PAGE_SIZE));
        assert_eq!(e.bytes(), 5 * PAGE_SIZE);
        assert_eq!(e.end(), FrameNo(15));
        assert!(e.contains(FrameNo(10)));
        assert!(e.contains(FrameNo(14)));
        assert!(!e.contains(FrameNo(15)));
        assert!(e.overlaps(&PhysExtent::new(FrameNo(14), 1)));
        assert!(!e.overlaps(&PhysExtent::new(FrameNo(15), 1)));
    }

    #[test]
    fn alloc_free_roundtrip() {
        let mut m = machine();
        let mut a = alloc_of(1024);
        let e = a.alloc(&mut m, 100).unwrap();
        assert_eq!(e.frames, 100);
        assert_eq!(a.free_frames(), 924);
        a.free(&mut m, e);
        assert_eq!(a.free_frames(), 1024);
        assert_eq!(a.free_runs(), 1, "fully coalesced");
    }

    #[test]
    fn cost_independent_of_size() {
        let mut m = machine();
        let mut a = alloc_of(1 << 20);
        let (_, small) = m.timed(|m| a.alloc(m, 1).unwrap());
        let (_, large) = m.timed(|m| a.alloc(m, 1 << 18).unwrap());
        assert_eq!(small, large, "O(1): cost must not grow with extent size");
    }

    #[test]
    fn best_fit_prefers_smallest_run() {
        let mut m = machine();
        let mut a = alloc_of(1000);
        // Create runs of 100 (at 0) and 800 (at 200) by allocating all
        // then freeing two chunks.
        let all = a.alloc(&mut m, 1000).unwrap();
        assert_eq!(all.start, FrameNo(0));
        a.free(&mut m, PhysExtent::new(FrameNo(0), 100));
        a.free(&mut m, PhysExtent::new(FrameNo(200), 800));
        // A 50-frame request should come from the 100-run.
        let e = a.alloc(&mut m, 50).unwrap();
        assert!(e.start.0 < 100, "best fit picked {e:?}");
    }

    #[test]
    fn aligned_allocation() {
        let mut m = machine();
        let mut a = alloc_of(4096);
        let _pad = a.alloc(&mut m, 3).unwrap(); // misalign the free space
        let e = a.alloc_aligned(&mut m, 512, 512).unwrap();
        assert_eq!(e.start.0 % 512, 0);
        assert_eq!(e.frames, 512);
        // The padding hole is reusable.
        let hole = a.alloc(&mut m, 509).unwrap();
        assert_eq!(hole.start, FrameNo(3));
    }

    #[test]
    fn oom_reports_request() {
        let mut m = machine();
        let mut a = alloc_of(10);
        assert_eq!(
            a.alloc(&mut m, 11),
            Err(AllocError::OutOfMemory { requested: 11 })
        );
        // Fragmentation OOM: 10 free but no contiguous 6.
        let e1 = a.alloc(&mut m, 5).unwrap();
        let _e2 = a.alloc(&mut m, 5).unwrap();
        a.free(&mut m, e1);
        assert!(a.alloc(&mut m, 6).is_err());
        assert_eq!(a.free_frames(), 5);
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let mut m = machine();
        let mut a = alloc_of(100);
        let e = a.alloc(&mut m, 10).unwrap();
        a.free(&mut m, e);
        a.free(&mut m, e);
    }

    #[test]
    fn coalescing_merges_neighbours() {
        let mut m = machine();
        let mut a = alloc_of(300);
        let e1 = a.alloc(&mut m, 100).unwrap();
        let e2 = a.alloc(&mut m, 100).unwrap();
        let e3 = a.alloc(&mut m, 100).unwrap();
        a.free(&mut m, e1);
        a.free(&mut m, e3);
        assert_eq!(a.free_runs(), 2);
        a.free(&mut m, e2);
        assert_eq!(a.free_runs(), 1);
        assert_eq!(a.largest_run(), 300);
    }

    #[test]
    fn perf_counters_track_frames() {
        let mut m = machine();
        let mut a = alloc_of(100);
        let e = a.alloc(&mut m, 42).unwrap();
        assert_eq!(m.perf.frames_alloced, 42);
        assert_eq!(m.perf.alloc_calls, 1);
        a.free(&mut m, e);
        assert_eq!(m.perf.frames_freed, 42);
    }

    proptest! {
        /// Random alloc/free interleavings conserve space, never hand
        /// out overlapping extents, and always coalesce back to one run.
        #[test]
        fn space_conservation(ops in proptest::collection::vec((1u64..64, any::<bool>()), 1..200)) {
            let total = 4096u64;
            let mut m = machine();
            let mut a = alloc_of(total);
            let mut live: Vec<PhysExtent> = Vec::new();
            for (size, free_one) in ops {
                if free_one && !live.is_empty() {
                    let e = live.swap_remove(size as usize % live.len());
                    a.free(&mut m, e);
                } else if let Ok(e) = a.alloc(&mut m, size) {
                    for other in &live {
                        prop_assert!(!e.overlaps(other), "overlap: {e:?} vs {other:?}");
                    }
                    live.push(e);
                }
                let live_frames: u64 = live.iter().map(|e| e.frames).sum();
                prop_assert_eq!(a.free_frames() + live_frames, total);
            }
            for e in live.drain(..) {
                a.free(&mut m, e);
            }
            prop_assert_eq!(a.free_frames(), total);
            prop_assert_eq!(a.free_runs(), 1);
        }

        /// Aligned allocations are aligned and in-bounds.
        #[test]
        fn alignment_respected(
            sizes in proptest::collection::vec(1u64..128, 1..40),
            align_pow in 0u32..7,
        ) {
            let mut m = machine();
            let mut a = alloc_of(1 << 16);
            let align = 1u64 << align_pow;
            for s in sizes {
                if let Ok(e) = a.alloc_aligned(&mut m, s, align) {
                    prop_assert_eq!(e.start.0 % align, 0);
                    prop_assert!(e.end().0 <= 1 << 16);
                }
            }
        }
    }
}
