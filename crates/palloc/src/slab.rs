//! Slab allocation for physical memory.
//!
//! §3.1: *"We propose using techniques from heaps, such as slab
//! allocators, to manage physical memory."* A [`SlabCache`] carves
//! large parent extents ("slabs") into fixed-size objects and serves
//! allocations from per-slab free lists at constant cost; a
//! [`SizeClassAllocator`] fronts a set of caches with power-of-two size
//! classes and falls back to the parent allocator for large requests.

use o1_hw::CostKind;
use std::collections::BTreeMap;

use o1_hw::{FrameNo, Machine};

use crate::extent::{AllocError, FrameSource, PhysExtent};

#[derive(Debug)]
struct Slab {
    /// Free object indexes within this slab.
    free_list: Vec<u32>,
    objs_allocated: u32,
}

/// A cache of fixed-size physical objects carved from parent extents.
#[derive(Debug)]
pub struct SlabCache {
    obj_frames: u64,
    objs_per_slab: u32,
    /// Slabs keyed by start frame.
    slabs: BTreeMap<u64, Slab>,
    /// Starts of slabs with at least one free object.
    partial: Vec<u64>,
    /// Fully-free slabs retained before returning to the parent.
    keep_empty: usize,
    empty: Vec<u64>,
    free_objs: u64,
}

impl SlabCache {
    /// Cache of objects `obj_frames` long, `objs_per_slab` per slab.
    ///
    /// # Panics
    /// Panics if either parameter is zero.
    pub fn new(obj_frames: u64, objs_per_slab: u32) -> SlabCache {
        assert!(
            obj_frames > 0 && objs_per_slab > 0,
            "degenerate slab geometry"
        );
        SlabCache {
            obj_frames,
            objs_per_slab,
            slabs: BTreeMap::new(),
            partial: Vec::new(),
            keep_empty: 1,
            empty: Vec::new(),
            free_objs: 0,
        }
    }

    /// Object size in frames.
    pub fn obj_frames(&self) -> u64 {
        self.obj_frames
    }

    /// Frames one whole slab occupies.
    pub fn slab_frames(&self) -> u64 {
        self.obj_frames * self.objs_per_slab as u64
    }

    /// Free objects currently cached.
    pub fn free_objects(&self) -> u64 {
        self.free_objs
    }

    /// Number of slabs held (partial + full + empty).
    pub fn slab_count(&self) -> usize {
        self.slabs.len()
    }

    /// Allocate one object. Fast path (a cached free object) charges
    /// one `slab_op`; the slow path additionally pays the parent's
    /// extent allocation for a fresh slab.
    pub fn alloc(
        &mut self,
        m: &mut Machine,
        parent: &mut dyn FrameSource,
    ) -> Result<PhysExtent, AllocError> {
        m.charge_kind(CostKind::SlabOp);
        // Prefer partial slabs, then cached-empty slabs.
        let start = match self.partial.last().copied() {
            Some(s) => s,
            None => match self.empty.pop() {
                Some(s) => {
                    self.partial.push(s);
                    s
                }
                None => {
                    // Grow: carve a new slab from the parent.
                    let ext = parent.alloc_aligned(m, self.slab_frames(), 1)?;
                    let slab = Slab {
                        free_list: (0..self.objs_per_slab).rev().collect(),
                        objs_allocated: 0,
                    };
                    self.slabs.insert(ext.start.0, slab);
                    self.partial.push(ext.start.0);
                    self.free_objs += self.objs_per_slab as u64;
                    ext.start.0
                }
            },
        };
        let slab = self.slabs.get_mut(&start).expect("partial slab exists");
        let idx = slab
            .free_list
            .pop()
            .expect("partial slab has a free object");
        slab.objs_allocated += 1;
        if slab.free_list.is_empty() {
            self.partial.retain(|&s| s != start);
        }
        self.free_objs -= 1;
        m.perf.alloc_calls += 1;
        m.perf.frames_alloced += self.obj_frames;
        Ok(PhysExtent::new(
            FrameNo(start + idx as u64 * self.obj_frames),
            self.obj_frames,
        ))
    }

    /// Free an object previously returned by [`alloc`](Self::alloc).
    /// Slabs that become entirely free beyond a small cached reserve
    /// are returned to the parent.
    ///
    /// # Panics
    /// Panics if `ext` was not allocated from this cache.
    pub fn free(&mut self, m: &mut Machine, parent: &mut dyn FrameSource, ext: PhysExtent) {
        assert_eq!(ext.frames, self.obj_frames, "object size mismatch");
        m.charge_kind(CostKind::SlabOp);
        let slab_frames = self.slab_frames();
        let (&start, slab) = self
            .slabs
            .range_mut(..=ext.start.0)
            .next_back()
            .filter(|(&s, _)| ext.start.0 < s + slab_frames)
            .unwrap_or_else(|| panic!("{ext:?} not from this slab cache"));
        let rel = ext.start.0 - start;
        assert_eq!(rel % self.obj_frames, 0, "misaligned object {ext:?}");
        let idx = (rel / self.obj_frames) as u32;
        assert!(
            !slab.free_list.contains(&idx),
            "double free of object {idx} in slab {start}"
        );
        slab.free_list.push(idx);
        slab.objs_allocated -= 1;
        self.free_objs += 1;
        m.perf.frames_freed += self.obj_frames;
        if slab.objs_allocated == 0 {
            // Slab is empty: cache a few, return the rest.
            self.partial.retain(|&s| s != start);
            if self.empty.len() < self.keep_empty {
                self.empty.push(start);
            } else {
                self.slabs.remove(&start);
                self.free_objs -= self.objs_per_slab as u64;
                parent.free(m, PhysExtent::new(FrameNo(start), self.slab_frames()));
            }
        } else if slab.free_list.len() == 1 {
            // Was full, now partial again.
            self.partial.push(start);
        }
    }
}

/// Power-of-two size-class allocator: slab caches for small requests,
/// direct parent extents for large ones. This is the physical-memory
/// analogue of a TCMalloc front end, used by file-only memory for
/// small-file allocation.
#[derive(Debug)]
pub struct SizeClassAllocator<P: FrameSource> {
    parent: P,
    /// caches[k] serves requests of up to 2^k frames.
    caches: Vec<SlabCache>,
    max_class_frames: u64,
    /// Class-sized extents that nevertheless came straight from the
    /// parent (aligned requests), so free() routes them back there.
    direct: std::collections::HashSet<u64>,
}

impl<P: FrameSource> SizeClassAllocator<P> {
    /// Wrap `parent` with size classes up to `2^max_class_log2` frames
    /// (objects above that go straight to the parent).
    pub fn new(parent: P, max_class_log2: u32) -> SizeClassAllocator<P> {
        let caches = (0..=max_class_log2)
            .map(|k| {
                let obj = 1u64 << k;
                // Keep slabs a reasonable multiple of the object size.
                let per_slab = (64u64 >> k).max(4) as u32;
                SlabCache::new(obj, per_slab)
            })
            .collect();
        SizeClassAllocator {
            parent,
            caches,
            max_class_frames: 1 << max_class_log2,
            direct: std::collections::HashSet::new(),
        }
    }

    /// Access the wrapped parent allocator.
    pub fn parent(&self) -> &P {
        &self.parent
    }

    fn class_for(&self, frames: u64) -> Option<usize> {
        (frames <= self.max_class_frames)
            .then(|| frames.next_power_of_two().trailing_zeros() as usize)
    }
}

impl<P: FrameSource> FrameSource for SizeClassAllocator<P> {
    fn alloc(&mut self, m: &mut Machine, frames: u64) -> Result<PhysExtent, AllocError> {
        assert!(frames > 0, "zero-length allocation");
        match self.class_for(frames) {
            Some(k) => {
                let e = self.caches[k].alloc(m, &mut self.parent)?;
                // Hand back exactly the class size (internal
                // fragmentation is the space-for-time trade).
                Ok(e)
            }
            None => self.parent.alloc(m, frames),
        }
    }

    fn alloc_aligned(
        &mut self,
        m: &mut Machine,
        frames: u64,
        align_frames: u64,
    ) -> Result<PhysExtent, AllocError> {
        // Size classes don't guarantee alignment beyond the object
        // size; delegate aligned requests to the parent.
        if align_frames <= 1 {
            return self.alloc(m, frames);
        }
        let ext = self.parent.alloc_aligned(m, frames, align_frames)?;
        self.direct.insert(ext.start.0);
        Ok(ext)
    }

    fn free(&mut self, m: &mut Machine, ext: PhysExtent) {
        if self.direct.remove(&ext.start.0) {
            self.parent.free(m, ext);
            return;
        }
        match self.class_for(ext.frames) {
            Some(k) if self.caches[k].obj_frames() == ext.frames => {
                let (caches, parent) = (&mut self.caches, &mut self.parent);
                caches[k].free(m, parent, ext);
            }
            _ => self.parent.free(m, ext),
        }
    }

    fn free_frames(&self) -> u64 {
        self.parent.free_frames()
            + self
                .caches
                .iter()
                .map(|c| c.free_objects() * c.obj_frames())
                .sum::<u64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extent::ExtentAllocator;
    use proptest::prelude::*;

    fn machine() -> Machine {
        Machine::dram_only(1 << 30)
    }

    fn parent(frames: u64) -> ExtentAllocator {
        ExtentAllocator::new(PhysExtent::new(FrameNo(0), frames))
    }

    #[test]
    fn slab_alloc_free_roundtrip() {
        let mut m = machine();
        let mut p = parent(4096);
        let mut c = SlabCache::new(1, 64);
        let a = c.alloc(&mut m, &mut p).unwrap();
        let b = c.alloc(&mut m, &mut p).unwrap();
        assert_ne!(a.start, b.start);
        assert_eq!(a.frames, 1);
        assert_eq!(c.slab_count(), 1, "both objects share one slab");
        c.free(&mut m, &mut p, a);
        c.free(&mut m, &mut p, b);
        assert_eq!(c.free_objects(), 64);
    }

    #[test]
    fn fast_path_is_constant_cost() {
        let mut m = machine();
        let mut p = parent(4096);
        let mut c = SlabCache::new(1, 64);
        let first = m.timed(|m| c.alloc(m, &mut p).unwrap()).1;
        let second = m.timed(|m| c.alloc(m, &mut p).unwrap()).1;
        assert!(first > second, "first alloc pays slab creation");
        assert_eq!(second, m.cost.slab_op);
    }

    #[test]
    fn objects_do_not_overlap_across_slabs() {
        let mut m = machine();
        let mut p = parent(4096);
        let mut c = SlabCache::new(2, 8);
        let objs: Vec<_> = (0..40).map(|_| c.alloc(&mut m, &mut p).unwrap()).collect();
        assert!(c.slab_count() >= 3);
        for (i, a) in objs.iter().enumerate() {
            for b in &objs[i + 1..] {
                assert!(!a.overlaps(b), "{a:?} overlaps {b:?}");
            }
        }
    }

    #[test]
    fn empty_slabs_returned_to_parent() {
        let mut m = machine();
        let mut p = parent(4096);
        let before = p.free_frames();
        let mut c = SlabCache::new(1, 16);
        let objs: Vec<_> = (0..48).map(|_| c.alloc(&mut m, &mut p).unwrap()).collect();
        assert_eq!(p.free_frames(), before - 48);
        for e in objs {
            c.free(&mut m, &mut p, e);
        }
        // keep_empty = 1: at most one slab retained.
        assert!(c.slab_count() <= 1);
        assert!(p.free_frames() >= before - 16);
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn slab_double_free_panics() {
        let mut m = machine();
        let mut p = parent(1024);
        let mut c = SlabCache::new(1, 8);
        let e = c.alloc(&mut m, &mut p).unwrap();
        c.free(&mut m, &mut p, e);
        c.free(&mut m, &mut p, e);
    }

    #[test]
    fn size_classes_route_correctly() {
        let mut m = machine();
        let mut a = SizeClassAllocator::new(parent(1 << 16), 6);
        let small = a.alloc(&mut m, 3).unwrap();
        assert_eq!(small.frames, 4, "rounded to class");
        let big = a.alloc(&mut m, 1000).unwrap();
        assert_eq!(big.frames, 1000, "large goes to parent exactly");
        a.free(&mut m, small);
        a.free(&mut m, big);
    }

    #[test]
    fn aligned_requests_bypass_classes() {
        let mut m = machine();
        let mut a = SizeClassAllocator::new(parent(1 << 16), 6);
        let e = a.alloc_aligned(&mut m, 8, 512).unwrap();
        assert_eq!(e.start.0 % 512, 0);
        a.free(&mut m, e);
    }

    proptest! {
        /// Size-class allocator never double-allocates and survives
        /// arbitrary alloc/free interleavings.
        #[test]
        fn no_overlap(ops in proptest::collection::vec((1u64..100, any::<bool>(), 0usize..8), 1..120)) {
            let mut m = machine();
            let mut a = SizeClassAllocator::new(parent(1 << 14), 5);
            let mut live: Vec<PhysExtent> = Vec::new();
            for (size, do_free, pick) in ops {
                if do_free && !live.is_empty() {
                    let e = live.swap_remove(pick % live.len());
                    a.free(&mut m, e);
                } else if let Ok(e) = a.alloc(&mut m, size) {
                    for other in &live {
                        prop_assert!(!e.overlaps(other), "{e:?} overlaps {other:?}");
                    }
                    live.push(e);
                }
            }
        }
    }
}
