//! Zeroing policies: making "erase" O(1).
//!
//! §3.1: *"for security purposes memory must be zeroed out before being
//! reused... This is currently a linear-time operation and suggests the
//! need for new techniques to efficiently erase memory in constant
//! time."* This module implements three policies as allocator wrappers
//! (each guarantees that every allocated extent reads as zeros):
//!
//! * [`EagerZero`] — the status quo: zero on the allocation critical
//!   path, O(size) foreground cost;
//! * [`ZeroPool`] — a Windows-style zeroed-page list: freed extents are
//!   zeroed by a background sweeper before re-entering the parent
//!   allocator, so the foreground cost is O(1) as long as the sweeper
//!   keeps up;
//! * [`CryptoZero`] — per-extent encryption keys: erase is a key drop,
//!   O(1) always; fresh extents read as zeros because old ciphertext
//!   is undecipherable under the new key.
//!
//! The A-ZERO ablation benchmark compares all three.

use o1_hw::CostKind;
use std::collections::VecDeque;

use o1_hw::Machine;

use crate::extent::{AllocError, FrameSource, PhysExtent};

/// Identifies a zeroing policy (for experiment configuration).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ZeroPolicy {
    /// Zero at allocation time, on the critical path.
    Eager,
    /// Background zeroed-extent pool.
    BackgroundPool,
    /// Per-extent crypto-erase.
    CryptoErase,
}

fn zero_extent_fg(m: &mut Machine, ext: PhysExtent) {
    let tier = m.phys.tier(ext.start);
    m.charge_zero_fg(tier, ext.bytes());
    m.phys.zero_frames(ext.start, ext.frames);
}

/// Status-quo policy: zero every extent when it is allocated.
#[derive(Debug)]
pub struct EagerZero<P: FrameSource> {
    parent: P,
}

impl<P: FrameSource> EagerZero<P> {
    /// Wrap `parent`.
    pub fn new(parent: P) -> Self {
        EagerZero { parent }
    }
}

impl<P: FrameSource> FrameSource for EagerZero<P> {
    fn alloc(&mut self, m: &mut Machine, frames: u64) -> Result<PhysExtent, AllocError> {
        let ext = self.parent.alloc(m, frames)?;
        zero_extent_fg(m, ext);
        Ok(ext)
    }

    fn alloc_aligned(
        &mut self,
        m: &mut Machine,
        frames: u64,
        align_frames: u64,
    ) -> Result<PhysExtent, AllocError> {
        let ext = self.parent.alloc_aligned(m, frames, align_frames)?;
        zero_extent_fg(m, ext);
        Ok(ext)
    }

    fn free(&mut self, m: &mut Machine, ext: PhysExtent) {
        self.parent.free(m, ext);
    }

    fn free_frames(&self) -> u64 {
        self.parent.free_frames()
    }
}

/// Background zeroed-extent pool.
///
/// Freed extents are parked on a dirty list and returned to the parent
/// only after a background sweep ([`ZeroPool::background_tick`]) has
/// zeroed them, so the parent only ever holds zeroed memory and the
/// allocation path pays no zeroing cost. If the parent runs dry while
/// dirty extents are parked, the allocation path falls back to zeroing
/// dirty extents in the foreground (and the counters show it).
#[derive(Debug)]
pub struct ZeroPool<P: FrameSource> {
    parent: P,
    dirty: VecDeque<PhysExtent>,
    dirty_frames: u64,
}

impl<P: FrameSource> ZeroPool<P> {
    /// Wrap `parent`, whose current free memory must already be zeroed
    /// (true at boot, when memory reads as zeros).
    pub fn new(parent: P) -> Self {
        ZeroPool {
            parent,
            dirty: VecDeque::new(),
            dirty_frames: 0,
        }
    }

    /// Frames parked awaiting background zeroing.
    pub fn dirty_frames(&self) -> u64 {
        self.dirty_frames
    }

    /// Zero up to `budget` frames of parked extents off the critical
    /// path, returning them to the parent. Returns frames processed.
    pub fn background_tick(&mut self, m: &mut Machine, budget: u64) -> u64 {
        let mut done = 0;
        while done < budget {
            let Some(ext) = self.dirty.pop_front() else {
                break;
            };
            // Partial extents are split so the budget is respected.
            let take = ext.frames.min(budget - done);
            let (head, tail) = if take == ext.frames {
                (ext, None)
            } else {
                (
                    PhysExtent::new(ext.start, take),
                    Some(PhysExtent::new(ext.start + take, ext.frames - take)),
                )
            };
            m.phys.zero_frames(head.start, head.frames);
            m.note_zero_bg(head.bytes());
            self.parent.free(m, head);
            self.dirty_frames -= head.frames;
            done += head.frames;
            if let Some(t) = tail {
                self.dirty.push_front(t);
            }
        }
        done
    }

    /// Foreground fallback: zero parked extents until at least
    /// `need_frames` have been returned to the parent.
    fn reclaim_fg(&mut self, m: &mut Machine, need_frames: u64) -> bool {
        let mut done = 0;
        while done < need_frames {
            let Some(ext) = self.dirty.pop_front() else {
                return false;
            };
            zero_extent_fg(m, ext);
            self.parent.free(m, ext);
            self.dirty_frames -= ext.frames;
            done += ext.frames;
        }
        true
    }
}

impl<P: FrameSource> FrameSource for ZeroPool<P> {
    fn alloc(&mut self, m: &mut Machine, frames: u64) -> Result<PhysExtent, AllocError> {
        self.alloc_aligned(m, frames, 1)
    }

    fn alloc_aligned(
        &mut self,
        m: &mut Machine,
        frames: u64,
        align_frames: u64,
    ) -> Result<PhysExtent, AllocError> {
        loop {
            match self.parent.alloc_aligned(m, frames, align_frames) {
                Ok(ext) => return Ok(ext),
                Err(e) => {
                    // Sweeper fell behind: zero dirty extents inline.
                    if !self.reclaim_fg(m, frames) {
                        return Err(e);
                    }
                }
            }
        }
    }

    fn free(&mut self, _m: &mut Machine, ext: PhysExtent) {
        self.dirty_frames += ext.frames;
        self.dirty.push_back(ext);
    }

    fn free_frames(&self) -> u64 {
        // Dirty frames are not allocatable until swept.
        self.parent.free_frames()
    }
}

/// Crypto-erase: each extent is notionally encrypted under a fresh key;
/// dropping the key erases the data in O(1) regardless of size.
///
/// Modelled costs: key generation at allocation (constant), key drop at
/// free (constant). The simulator zeroes the backing at free time with
/// *no foreground charge* to reflect that the old bits are unreadable.
#[derive(Debug)]
pub struct CryptoZero<P: FrameSource> {
    parent: P,
    keys_live: u64,
    keys_dropped: u64,
}

/// Constant cost of dropping a key (ns).
const KEY_DROP_NS: u64 = 90;

impl<P: FrameSource> CryptoZero<P> {
    /// Wrap `parent`.
    pub fn new(parent: P) -> Self {
        CryptoZero {
            parent,
            keys_live: 0,
            keys_dropped: 0,
        }
    }

    /// Number of live per-extent keys.
    pub fn keys_live(&self) -> u64 {
        self.keys_live
    }

    /// Number of keys dropped (erase operations performed).
    pub fn keys_dropped(&self) -> u64 {
        self.keys_dropped
    }
}

impl<P: FrameSource> FrameSource for CryptoZero<P> {
    fn alloc(&mut self, m: &mut Machine, frames: u64) -> Result<PhysExtent, AllocError> {
        let ext = self.parent.alloc(m, frames)?;
        m.charge_kind(CostKind::KeyGen);
        self.keys_live += 1;
        Ok(ext)
    }

    fn alloc_aligned(
        &mut self,
        m: &mut Machine,
        frames: u64,
        align_frames: u64,
    ) -> Result<PhysExtent, AllocError> {
        let ext = self.parent.alloc_aligned(m, frames, align_frames)?;
        m.charge_kind(CostKind::KeyGen);
        self.keys_live += 1;
        Ok(ext)
    }

    fn free(&mut self, m: &mut Machine, ext: PhysExtent) {
        m.charge_tagged(CostKind::KeyDrop, 1, KEY_DROP_NS);
        self.keys_live = self.keys_live.saturating_sub(1);
        self.keys_dropped += 1;
        // Old contents are ciphertext under a dropped key: unreadable.
        m.phys.zero_frames(ext.start, ext.frames);
        self.parent.free(m, ext);
    }

    fn free_frames(&self) -> u64 {
        self.parent.free_frames()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extent::ExtentAllocator;
    use o1_hw::{FrameNo, PhysAddr, PAGE_SIZE};

    fn machine() -> Machine {
        Machine::dram_only(64 << 20)
    }

    fn parent(frames: u64) -> ExtentAllocator {
        ExtentAllocator::new(PhysExtent::new(FrameNo(0), frames))
    }

    fn dirty_then_free<A: FrameSource>(m: &mut Machine, a: &mut A, frames: u64) -> PhysExtent {
        let e = a.alloc(m, frames).unwrap();
        m.phys.write(e.base(), &[0xab; 64]);
        a.free(m, e);
        e
    }

    #[test]
    fn eager_zero_charges_linear() {
        let mut m = machine();
        let mut a = EagerZero::new(parent(4096));
        let (_, one) = m.timed(|m| a.alloc(m, 1).unwrap());
        let (_, many) = m.timed(|m| a.alloc(m, 256).unwrap());
        assert!(many > 100 * one / 2, "eager zeroing is O(size)");
        assert_eq!(m.perf.bytes_zeroed_fg, 257 * PAGE_SIZE);
    }

    #[test]
    fn eager_zero_scrubs_reuse() {
        let mut m = machine();
        let mut a = EagerZero::new(parent(4096));
        let old = dirty_then_free(&mut m, &mut a, 4);
        let e = a.alloc(&mut m, 4).unwrap();
        assert_eq!(e.start, old.start, "best-fit reuses the same extent");
        assert!(m.phys.frame_is_zero(e.start));
    }

    #[test]
    fn pool_alloc_is_constant_time_when_swept() {
        let mut m = machine();
        let mut a = ZeroPool::new(parent(1 << 14));
        let (_, small) = m.timed(|m| a.alloc(m, 1).unwrap());
        let (_, large) = m.timed(|m| a.alloc(m, 4096).unwrap());
        assert_eq!(small, large, "no zeroing on the allocation path");
        assert_eq!(m.perf.bytes_zeroed_fg, 0);
    }

    #[test]
    fn pool_sweeper_zeroes_in_background() {
        let mut m = machine();
        let mut a = ZeroPool::new(parent(1024));
        let old = dirty_then_free(&mut m, &mut a, 8);
        assert_eq!(a.dirty_frames(), 8);
        let swept = a.background_tick(&mut m, 100);
        assert_eq!(swept, 8);
        assert_eq!(a.dirty_frames(), 0);
        assert!(m.phys.frame_is_zero(old.start));
        assert_eq!(m.perf.bytes_zeroed_bg, 8 * PAGE_SIZE);
        assert_eq!(m.perf.bytes_zeroed_fg, 0);
    }

    #[test]
    fn pool_budget_respected() {
        let mut m = machine();
        let mut a = ZeroPool::new(parent(1024));
        let e = a.alloc(&mut m, 100).unwrap();
        a.free(&mut m, e);
        assert_eq!(a.background_tick(&mut m, 30), 30);
        assert_eq!(a.dirty_frames(), 70);
        assert_eq!(a.background_tick(&mut m, 1000), 70);
    }

    #[test]
    fn pool_falls_back_to_foreground_under_pressure() {
        let mut m = machine();
        let mut a = ZeroPool::new(parent(64));
        let e = a.alloc(&mut m, 64).unwrap();
        a.free(&mut m, e);
        // No background sweep has run; allocation must still succeed,
        // paying the zeroing cost in the foreground.
        let e2 = a.alloc(&mut m, 32).unwrap();
        assert_eq!(e2.frames, 32);
        assert!(m.perf.bytes_zeroed_fg > 0);
    }

    #[test]
    fn pool_true_oom_still_errors() {
        let mut m = machine();
        let mut a = ZeroPool::new(parent(16));
        let _held = a.alloc(&mut m, 16).unwrap();
        assert!(a.alloc(&mut m, 1).is_err());
    }

    #[test]
    fn crypto_erase_is_constant_time() {
        let mut m = machine();
        let mut a = CryptoZero::new(parent(1 << 14));
        let small = a.alloc(&mut m, 1).unwrap();
        let large = a.alloc(&mut m, 8192).unwrap();
        m.phys.write(large.base(), b"secret");
        let (_, free_small) = m.timed(|m| a.free(m, small));
        let (_, free_large) = m.timed(|m| a.free(m, large));
        assert_eq!(free_small, free_large, "key drop is O(1)");
        assert_eq!(a.keys_dropped(), 2);
        // Erased data is unreadable (reads as zero).
        assert!(m.phys.frame_is_zero(large.start));
        assert_eq!(m.perf.bytes_zeroed_fg, 0);
    }

    #[test]
    fn crypto_alloc_pays_key_gen() {
        let mut m = machine();
        let mut a = CryptoZero::new(parent(1024));
        let (_, ns) = m.timed(|m| a.alloc(m, 512).unwrap());
        assert_eq!(ns, m.cost.extent_alloc + m.cost.key_gen);
        assert_eq!(a.keys_live(), 1);
    }

    #[test]
    fn all_policies_return_zeroed_memory() {
        let mut m = machine();
        // Eager.
        let mut ea = EagerZero::new(parent(256));
        dirty_then_free(&mut m, &mut ea, 2);
        let e = ea.alloc(&mut m, 2).unwrap();
        assert!(m.phys.frame_is_zero(e.start));
        // Pool (with sweeping).
        let mut zp = ZeroPool::new(ExtentAllocator::new(PhysExtent::new(FrameNo(256), 256)));
        dirty_then_free(&mut m, &mut zp, 2);
        zp.background_tick(&mut m, 100);
        let e = zp.alloc(&mut m, 2).unwrap();
        assert!(m.phys.frame_is_zero(e.start));
        // Crypto.
        let mut cz = CryptoZero::new(ExtentAllocator::new(PhysExtent::new(FrameNo(512), 256)));
        dirty_then_free(&mut m, &mut cz, 2);
        let e = cz.alloc(&mut m, 2).unwrap();
        assert!(m.phys.frame_is_zero(e.start));
        let _ = PhysAddr(0);
    }
}
